package experiments

import (
	"github.com/cpm-sim/cpm/internal/core"
	"github.com/cpm-sim/cpm/internal/gpm"
	"github.com/cpm-sim/cpm/internal/maxbips"
	"github.com/cpm-sim/cpm/internal/power"
	"github.com/cpm-sim/cpm/internal/sim"
)

// runSummary aggregates one managed or baseline run over its measurement
// window.
type runSummary struct {
	// MeanPowerW is the mean chip power.
	MeanPowerW float64
	// Instructions executed during the measurement window.
	Instructions float64
	// MeanBIPS is the mean chip throughput.
	MeanBIPS float64
	// WorstEpochOver is the worst per-GPM-epoch budget overshoot fraction.
	WorstEpochOver float64
	// Epochs holds per-epoch mean chip power.
	Epochs []float64
	// IslandAlloc[i] and IslandPower[i] are per-epoch allocation and mean
	// measured power per island (managed runs only).
	IslandAlloc [][]float64
	IslandPower [][]float64
	// IslandBIPS[i] is per-epoch mean BIPS per island.
	IslandBIPS [][]float64
	// Steps optionally records every interval (set keepSteps).
	Steps []core.StepResult
	// MaxTempC is the peak temperature seen during measurement.
	MaxTempC float64
	// AllocTrace records the allocation vector at every GPM invocation
	// (for thermal-violation analysis).
	AllocTrace [][]float64
}

// cpmParams configures a managed run.
type cpmParams struct {
	budgetW     float64
	policy      gpm.Policy
	gpmPeriod   int
	warmEpochs  int
	measEpochs  int
	keepSteps   bool
	oraclePower bool
}

// runCPM executes a CPM-managed run and summarises its measurement window.
func runCPM(cfg sim.Config, cal core.Calibration, p cpmParams) (runSummary, error) {
	cmp, err := sim.New(cfg)
	if err != nil {
		return runSummary{}, err
	}
	period := p.gpmPeriod
	if period <= 0 {
		period = 20
	}
	c, err := core.New(cmp, core.Config{
		BudgetW:        p.budgetW,
		Policy:         p.policy,
		GPMPeriod:      period,
		Transducers:    cal.Transducers,
		UseOraclePower: p.oraclePower,
	})
	if err != nil {
		return runSummary{}, err
	}
	c.Run(p.warmEpochs * period)

	n := cmp.NumIslands()
	sum := runSummary{
		IslandAlloc: make([][]float64, n),
		IslandPower: make([][]float64, n),
		IslandBIPS:  make([][]float64, n),
	}
	intervals := p.measEpochs * period
	epochPow := 0.0
	epochIslPow := make([]float64, n)
	epochIslBIPS := make([]float64, n)
	for k := 0; k < intervals; k++ {
		r := c.Step()
		if p.keepSteps {
			sum.Steps = append(sum.Steps, r)
		}
		if r.GPMInvoked {
			sum.AllocTrace = append(sum.AllocTrace, append([]float64(nil), r.AllocW...))
		}
		sum.MeanPowerW += r.Sim.ChipPowerW
		sum.MeanBIPS += r.Sim.TotalBIPS
		if r.Sim.MaxTempC > sum.MaxTempC {
			sum.MaxTempC = r.Sim.MaxTempC
		}
		epochPow += r.Sim.ChipPowerW
		for i, ir := range r.Sim.Islands {
			sum.Instructions += ir.Instructions
			epochIslPow[i] += ir.PowerW
			epochIslBIPS[i] += ir.BIPS
		}
		if (k+1)%period == 0 {
			mean := epochPow / float64(period)
			sum.Epochs = append(sum.Epochs, mean)
			if over := (mean - p.budgetW) / p.budgetW; over > sum.WorstEpochOver {
				sum.WorstEpochOver = over
			}
			for i := 0; i < n; i++ {
				sum.IslandAlloc[i] = append(sum.IslandAlloc[i], r.AllocW[i])
				sum.IslandPower[i] = append(sum.IslandPower[i], epochIslPow[i]/float64(period))
				sum.IslandBIPS[i] = append(sum.IslandBIPS[i], epochIslBIPS[i]/float64(period))
				epochIslPow[i], epochIslBIPS[i] = 0, 0
			}
			epochPow = 0
		}
	}
	sum.MeanPowerW /= float64(intervals)
	sum.MeanBIPS /= float64(intervals)
	return sum, nil
}

// runMaxBIPS executes the MaxBIPS baseline: every GPM period the planner
// picks the level combination maximizing predicted BIPS under the budget.
// With static true (the paper's setup, used by every comparison figure),
// predictions come from a workload-blind static characterization table; the
// adaptive mode predicts from last-epoch per-island observations (the
// original Isci et al. formulation) and is kept for ablations.
func runMaxBIPS(cfg sim.Config, budgetW float64, gpmPeriod, warmEpochs, measEpochs int, static bool) (runSummary, error) {
	cmp, err := sim.New(cfg)
	if err != nil {
		return runSummary{}, err
	}
	planner, err := maxbips.New(cmp.Table())
	if err != nil {
		return runSummary{}, err
	}
	if static {
		if err := planner.SetStaticTable(staticTableFor(cmp)); err != nil {
			return runSummary{}, err
		}
	}
	period := gpmPeriod
	if period <= 0 {
		period = 20
	}
	n := cmp.NumIslands()
	obs := make([]maxbips.IslandObs, n)
	epochPow := make([]float64, n)
	epochBIPS := make([]float64, n)
	haveObs := false

	sum := runSummary{}
	total := (warmEpochs + measEpochs) * period
	measStart := warmEpochs * period
	epochChip := 0.0
	for k := 0; k < total; k++ {
		if k%period == 0 && haveObs {
			for i := 0; i < n; i++ {
				obs[i] = maxbips.IslandObs{
					Level:  cmp.Level(i),
					PowerW: epochPow[i] / float64(period),
					BIPS:   epochBIPS[i] / float64(period),
				}
				epochPow[i], epochBIPS[i] = 0, 0
			}
			for i, lvl := range planner.Choose(budgetW, obs) {
				cmp.SetLevel(i, lvl)
			}
		} else if k%period == 0 {
			for i := range epochPow {
				epochPow[i], epochBIPS[i] = 0, 0
			}
		}
		r := cmp.Step()
		for i, ir := range r.Islands {
			epochPow[i] += ir.PowerW
			epochBIPS[i] += ir.BIPS
			if k >= measStart {
				sum.Instructions += ir.Instructions
			}
		}
		if (k+1)%period == 0 {
			haveObs = true
		}
		if k >= measStart {
			sum.MeanPowerW += r.ChipPowerW
			sum.MeanBIPS += r.TotalBIPS
			if r.MaxTempC > sum.MaxTempC {
				sum.MaxTempC = r.MaxTempC
			}
			epochChip += r.ChipPowerW
			if (k+1)%period == 0 {
				mean := epochChip / float64(period)
				sum.Epochs = append(sum.Epochs, mean)
				if over := (mean - budgetW) / budgetW; over > sum.WorstEpochOver {
					sum.WorstEpochOver = over
				}
				epochChip = 0
			}
		}
	}
	intervals := float64(measEpochs * period)
	sum.MeanPowerW /= intervals
	sum.MeanBIPS /= intervals
	return sum, nil
}

// runUnmanagedWindow measures the no-power-management baseline over exactly
// the same interval window as a managed run (same seed, same phases), so
// instruction counts are directly comparable.
func runUnmanagedWindow(cfg sim.Config, warmEpochs, measEpochs, gpmPeriod int) (runSummary, error) {
	cfg.InitialLevel = -1
	cmp, err := sim.New(cfg)
	if err != nil {
		return runSummary{}, err
	}
	period := gpmPeriod
	if period <= 0 {
		period = 20
	}
	for k := 0; k < warmEpochs*period; k++ {
		cmp.Step()
	}
	sum := runSummary{}
	intervals := measEpochs * period
	for k := 0; k < intervals; k++ {
		r := cmp.Step()
		sum.MeanPowerW += r.ChipPowerW
		sum.MeanBIPS += r.TotalBIPS
		for _, ir := range r.Islands {
			sum.Instructions += ir.Instructions
		}
	}
	sum.MeanPowerW /= float64(intervals)
	sum.MeanBIPS /= float64(intervals)
	return sum, nil
}

// degradation returns the throughput loss of run vs baseline as a fraction.
func degradation(run, baseline runSummary) float64 {
	if baseline.Instructions == 0 {
		return 0
	}
	d := 1 - run.Instructions/baseline.Instructions
	if d < 0 {
		return 0
	}
	return d
}

// staticTableFor builds the characterization table the static MaxBIPS
// selects from: per island and level, the nominal power of its cores at a
// typical 70% activity plus reference-temperature leakage — the kind of
// offline table a datasheet-driven implementation would carry.
func staticTableFor(cmp *sim.CMP) [][]float64 {
	m := cmp.Model()
	levels := cmp.Table().Levels()
	out := make([][]float64, cmp.NumIslands())
	for i := range out {
		out[i] = make([]float64, levels)
		for l := 0; l < levels; l++ {
			op := cmp.Table().Point(l)
			corePred := 0.7*m.Dynamic.Power(op, power.FullActivity()) +
				m.Leakage.Power(op.VoltageV, m.Leakage.TRefC, 1)
			out[i][l] = corePred * float64(cmp.IslandCores(i))
		}
	}
	return out
}
