package experiments

import (
	"github.com/cpm-sim/cpm/internal/core"
	"github.com/cpm-sim/cpm/internal/engine"
	"github.com/cpm-sim/cpm/internal/gpm"
	"github.com/cpm-sim/cpm/internal/maxbips"
	"github.com/cpm-sim/cpm/internal/sim"
)

// runSummary is the engine's run summary; the experiments previously
// aggregated this by hand in three bespoke loops.
type runSummary = engine.Summary

// cpmParams configures a managed run.
type cpmParams struct {
	budgetW     float64
	policy      gpm.Policy
	gpmPeriod   int
	warmEpochs  int
	measEpochs  int
	keepSteps   bool
	oraclePower bool
	faults      *core.FaultPlan
	// observers watch the run as it executes (engine.Observer fan-out).
	observers []engine.Observer
}

// runCPM executes a CPM-managed run and summarises its measurement window.
func runCPM(cfg sim.Config, cal core.Calibration, p cpmParams) (runSummary, error) {
	cmp, err := sim.New(cfg)
	if err != nil {
		return runSummary{}, err
	}
	period := p.gpmPeriod
	if period <= 0 {
		period = 20
	}
	c, err := core.New(cmp, core.Config{
		BudgetW:        p.budgetW,
		Policy:         p.policy,
		GPMPeriod:      period,
		Transducers:    cal.Transducers,
		UseOraclePower: p.oraclePower,
		Faults:         p.faults,
	})
	if err != nil {
		return runSummary{}, err
	}
	s, err := engine.NewSession(engine.NewCPMRunner(c), engine.SessionConfig{
		WarmEpochs:    p.warmEpochs,
		MeasureEpochs: p.measEpochs,
		Period:        period,
		BudgetW:       p.budgetW,
		KeepSteps:     p.keepSteps,
		Label:         "cpm",
	}, p.observers...)
	if err != nil {
		return runSummary{}, err
	}
	return s.Run(), nil
}

// runMaxBIPS executes the MaxBIPS baseline: every GPM period the planner
// picks the level combination maximizing predicted BIPS under the budget.
// With static true (the paper's setup, used by every comparison figure),
// predictions come from a workload-blind static characterization table; the
// adaptive mode predicts from last-epoch per-island observations (the
// original Isci et al. formulation) and is kept for ablations.
func runMaxBIPS(cfg sim.Config, budgetW float64, gpmPeriod, warmEpochs, measEpochs int, static bool) (runSummary, error) {
	cmp, err := sim.New(cfg)
	if err != nil {
		return runSummary{}, err
	}
	planner, err := maxbips.New(cmp.Table())
	if err != nil {
		return runSummary{}, err
	}
	if static {
		if err := planner.SetStaticTable(engine.StaticPredictionTable(cmp)); err != nil {
			return runSummary{}, err
		}
	}
	period := gpmPeriod
	if period <= 0 {
		period = 20
	}
	r, err := engine.NewMaxBIPSRunner(cmp, planner, budgetW, period)
	if err != nil {
		return runSummary{}, err
	}
	s, err := engine.NewSession(r, engine.SessionConfig{
		WarmEpochs:    warmEpochs,
		MeasureEpochs: measEpochs,
		Period:        period,
		BudgetW:       budgetW,
		Label:         "maxbips",
	})
	if err != nil {
		return runSummary{}, err
	}
	return s.Run(), nil
}

// runUnmanagedWindow measures the no-power-management baseline over exactly
// the same interval window as a managed run (same seed, same phases), so
// instruction counts are directly comparable.
func runUnmanagedWindow(cfg sim.Config, warmEpochs, measEpochs, gpmPeriod int) (runSummary, error) {
	cfg.InitialLevel = -1
	cmp, err := sim.New(cfg)
	if err != nil {
		return runSummary{}, err
	}
	s, err := engine.NewSession(engine.NewChipRunner(cmp), engine.SessionConfig{
		WarmEpochs:    warmEpochs,
		MeasureEpochs: measEpochs,
		Period:        gpmPeriod,
		Label:         "unmanaged",
	})
	if err != nil {
		return runSummary{}, err
	}
	return s.Run(), nil
}

// degradation returns the throughput loss of run vs baseline as a fraction.
func degradation(run, baseline runSummary) float64 {
	return engine.Degradation(run, baseline)
}
