package experiments

import (
	"strings"
	"testing"
)

// quick runs an experiment in Quick mode, failing the test on error.
func quick(t *testing.T, id string) Result {
	t.Helper()
	d, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	r, err := d.Run(Options{Quick: true})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if r.ID != id {
		t.Fatalf("result ID %q for experiment %q", r.ID, id)
	}
	if r.Text == "" {
		t.Fatalf("%s produced no report", id)
	}
	return r
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2", "table3",
		"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
		"ext1", "ext2", "ext3", "scorecard", "technode",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("registry[%d] = %s, want %s", i, all[i].ID, id)
		}
		if all[i].Paper == "" || all[i].Title == "" {
			t.Errorf("%s missing metadata", id)
		}
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown ID should error")
	}
}

func TestTables(t *testing.T) {
	r := quick(t, "table1")
	if r.Metrics["dvfs_levels"] != 8 || r.Metrics["fmin_mhz"] != 600 || r.Metrics["fmax_mhz"] != 2000 {
		t.Errorf("Table I V/f settings wrong: %v", r.Metrics)
	}
	if r.Metrics["mem_cycles_2g"] != 200 {
		t.Errorf("memory latency = %v cycles, want 200", r.Metrics["mem_cycles_2g"])
	}
	r = quick(t, "table2")
	if r.Metrics["benchmarks"] != 8 {
		t.Errorf("Table II should list 8 PARSEC benchmarks")
	}
	if !strings.Contains(r.Text, "blackscholes") || !strings.Contains(r.Text, "canneal") {
		t.Error("Table II missing benchmarks")
	}
	r = quick(t, "table3")
	if r.Metrics["mix1_cores"] != 8 || r.Metrics["mix3_cores"] != 16 {
		t.Errorf("Table III shapes wrong: %v", r.Metrics)
	}
}

// Figure 5: the difference model must predict measured power closely.
func TestFig5ModelAccuracy(t *testing.T) {
	r := quick(t, "fig5")
	if g := r.Metrics["plant_gain"]; g < 0.3 || g > 1.2 {
		t.Errorf("plant gain = %v, want in the family of the paper's 0.79", g)
	}
	if m := r.Metrics["mape_pct"]; m > 10 {
		t.Errorf("model error = %.1f%%, paper reports well within 10%%", m)
	}
}

// Figure 6: the power-utilization relation must be strongly linear.
func TestFig6Linearity(t *testing.T) {
	r := quick(t, "fig6")
	if avg := r.Metrics["avg_r2"]; avg < 0.85 {
		t.Errorf("average R² = %.3f, paper reports 0.96", avg)
	}
	if min := r.Metrics["min_r2"]; min < 0.70 {
		t.Errorf("weakest benchmark R² = %.3f, too weak for a usable transducer", min)
	}
}

// Figure 7: the GPM must actually move provisions around (dynamic demand)
// while every island keeps a meaningful share.
func TestFig7ProvisioningDynamics(t *testing.T) {
	r := quick(t, "fig7")
	lo, hi := r.Metrics["min_share_pct"], r.Metrics["max_share_pct"]
	if hi-lo < 2 {
		t.Errorf("provisions barely move (%.1f%%..%.1f%%); expected visible dynamics", lo, hi)
	}
	if lo < 5 || hi > 50 {
		t.Errorf("provision range [%.1f%%, %.1f%%] outside the plausible band (paper: ~13-25%%)", lo, hi)
	}
}

// Figure 8: actual island power tracks the moving target.
func TestFig8IslandTracking(t *testing.T) {
	r := quick(t, "fig8")
	if gap := r.Metrics["worst_gap_pct_chip"]; gap > 6 {
		t.Errorf("worst island tracking gap = %.2f%% of chip power, want tight tracking", gap)
	}
}

// Figure 9: PIC overshoot and settling inside the paper's envelope.
func TestFig9PICEnvelope(t *testing.T) {
	r := quick(t, "fig9")
	if over := r.Metrics["mean_overshoot"]; over > 0.04 {
		t.Errorf("mean PIC overshoot = %s, paper: mostly within 2%%", pct(over))
	}
	if over := r.Metrics["p95_overshoot"]; over > 0.12 {
		t.Errorf("95th-pct PIC overshoot = %s, too loose", pct(over))
	}
	if s := r.Metrics["mean_settle_invk"]; s > 8 {
		t.Errorf("mean settling = %.1f invocations, paper: 5-6", s)
	}
}

// Figure 10: chip-wide tracking within the 4%-ish envelope at epoch
// granularity.
func TestFig10ChipTracking(t *testing.T) {
	r := quick(t, "fig10")
	if over := r.Metrics["worst_overshoot"]; over > 0.05 {
		t.Errorf("worst chip overshoot = %s, paper: mostly within 4%%", pct(over))
	}
	if under := r.Metrics["worst_undershoot"]; under > 0.10 {
		t.Errorf("worst chip undershoot = %s", pct(under))
	}
}

// Figure 11: we track the budget; MaxBIPS stays below it.
func TestFig11BudgetCurves(t *testing.T) {
	r := quick(t, "fig11")
	if r.Metrics["maxbips_always_below"] != 1 {
		t.Error("MaxBIPS should always consume below the budget (discrete knobs)")
	}
	if over := r.Metrics["ours_worst_overshoot"]; over > 0.04 {
		t.Errorf("our scheme's worst mean overshoot = %s, should track from below", pct(over))
	}
	if gap := r.Metrics["ours_worst_undershoot"]; gap > 0.10 {
		t.Errorf("our scheme under-consumes by %s at worst; should track closely", pct(gap))
	}
}

// Figure 12: degradation is monotone in the budget and small at 80%.
func TestFig12DegradationCurve(t *testing.T) {
	r := quick(t, "fig12")
	d50, d80, d95 := r.Metrics["degradation_at_50"], r.Metrics["degradation_at_80"], r.Metrics["degradation_at_95"]
	if !(d50 > d80 && d80 >= d95) {
		t.Errorf("degradation not monotone: 50%%=%s 80%%=%s 95%%=%s", pct(d50), pct(d80), pct(d95))
	}
	// The paper reports ~4%% here. Our substrate's power curve is distinctly
	// sub-cubic in frequency (elasticity ~1.5 once leakage and structural
	// activity are accounted for), so the same 20%% power cut costs more
	// frequency — see EXPERIMENTS.md for the quantitative comparison.
	if d80 > 0.18 {
		t.Errorf("degradation at 80%% budget = %s, want bounded (paper: ~4%%)", pct(d80))
	}
	if d50 < 0.05 {
		t.Errorf("degradation at 50%% budget = %s, implausibly small", pct(d50))
	}
}

// Figure 13: MaxBIPS is competitive at 1 core/island but loses at larger
// islands; degradation grows with island size for our scheme.
func TestFig13IslandSize(t *testing.T) {
	r := quick(t, "fig13")
	if r.Metrics["ours_4"] < r.Metrics["ours_1"]-0.02 {
		t.Errorf("our degradation should not shrink with island size: 1=%s 4=%s",
			pct(r.Metrics["ours_1"]), pct(r.Metrics["ours_4"]))
	}
	// At 1 core/island the two schemes are comparable.
	if diff := r.Metrics["maxbips_1"] - r.Metrics["ours_1"]; diff < -0.05 {
		t.Errorf("at 1 core/island MaxBIPS (%s) should be comparable to ours (%s)",
			pct(r.Metrics["maxbips_1"]), pct(r.Metrics["ours_1"]))
	}
	// At 4 cores/island ours wins clearly.
	if r.Metrics["maxbips_4"] < r.Metrics["ours_4"] {
		t.Errorf("at 4 cores/island ours (%s) should beat MaxBIPS (%s)",
			pct(r.Metrics["ours_4"]), pct(r.Metrics["maxbips_4"]))
	}
}

// Figure 14: at the 100% budget the controller costs almost nothing.
func TestFig14FullBudgetNearZeroCost(t *testing.T) {
	r := quick(t, "fig14")
	if avg := r.Metrics["avg_degradation"]; avg > 0.03 {
		t.Errorf("average degradation at 100%% budget = %s, paper: 0.9%%", pct(avg))
	}
	if max := r.Metrics["max_degradation"]; max > 0.08 {
		t.Errorf("max degradation at 100%% budget = %s, paper: ~2.2%%", pct(max))
	}
}

// Figure 15: at scale, ours stays flat while MaxBIPS degrades much more.
func TestFig15Scaling(t *testing.T) {
	r := quick(t, "fig15")
	for _, cores := range []string{"16", "32"} {
		ours := r.Metrics["ours_"+cores]
		mb := r.Metrics["maxbips_"+cores]
		if ours > 0.12 {
			t.Errorf("%s cores: our degradation = %s, paper: ~4%%", cores, pct(ours))
		}
		if mb < ours {
			t.Errorf("%s cores: MaxBIPS (%s) should degrade at least as much as ours (%s)",
				cores, pct(mb), pct(ours))
		}
	}
}

// Figure 16: homogeneous islands (Mix-2) lose less performance.
func TestFig16MixSensitivity(t *testing.T) {
	r := quick(t, "fig16")
	if r.Metrics["Mix-2"] > r.Metrics["Mix-1"] {
		t.Errorf("Mix-2 (%s) should degrade less than Mix-1 (%s)",
			pct(r.Metrics["Mix-2"]), pct(r.Metrics["Mix-1"]))
	}
}

// Figure 17: the finer PIC interval does at least as well for every island
// size.
func TestFig17IntervalSensitivity(t *testing.T) {
	r := quick(t, "fig17")
	for _, size := range []string{"size1", "size2", "size4"} {
		fine := r.Metrics[size+"_pic2.5ms"]
		coarse := r.Metrics[size+"_pic5.0ms"]
		if fine > coarse+0.02 {
			t.Errorf("%s: fine interval (%s) should not lose to coarse (%s)",
				size, pct(fine), pct(coarse))
		}
	}
}

// Figure 18: the thermal-aware policy eliminates constraint violations at
// some performance cost; the performance-aware policy violates them.
func TestFig18ThermalPolicy(t *testing.T) {
	r := quick(t, "fig18")
	if r.Metrics["thermal_violations"] != 0 {
		t.Errorf("thermal-aware policy violated its own constraints %v times", r.Metrics["thermal_violations"])
	}
	if r.Metrics["perf_violation_frac"] <= 0 {
		t.Error("performance-aware policy should violate thermal constraints some of the time")
	}
	// Degradations of the two policies stay in the same band. (The paper
	// reports the thermal policy costing a little extra performance; on
	// this substrate the forced spreading is occasionally slightly
	// *better*, because Equation 4's cube-law assumption makes the
	// unconstrained policy concentrate more than a sub-cubic power curve
	// justifies — see EXPERIMENTS.md.)
	gap := r.Metrics["thermal_degradation"] - r.Metrics["perf_degradation"]
	if gap > 0.10 || gap < -0.10 {
		t.Errorf("thermal-aware (%s) vs performance-aware (%s) degradation gap too large",
			pct(r.Metrics["thermal_degradation"]), pct(r.Metrics["perf_degradation"]))
	}
}

// Figure 19: the variation-aware policy improves power/throughput, at some
// throughput cost, most visibly on the leakiest island.
func TestFig19VariationPolicy(t *testing.T) {
	r := quick(t, "fig19")
	if r.Metrics["mean_pt_improvement"] <= 0 {
		t.Errorf("mean power/throughput improvement = %s, want positive", pct(r.Metrics["mean_pt_improvement"]))
	}
	if r.Metrics["mean_throughput_loss"] < 0 {
		t.Error("variation-aware should trade some throughput")
	}
	if r.Metrics["mean_throughput_loss"] > 0.35 {
		t.Errorf("throughput loss = %s, implausibly large", pct(r.Metrics["mean_throughput_loss"]))
	}
}

// Extension 1: the energy policy's frontier — lower floors save more power,
// and every floor is honoured within tolerance.
func TestExt1EnergyFrontier(t *testing.T) {
	r := quick(t, "ext1")
	if r.Metrics["floor85_power_frac"] >= r.Metrics["floor95_power_frac"] {
		t.Errorf("lower floor should consume less power: 85%%→%.2f vs 95%%→%.2f",
			r.Metrics["floor85_power_frac"], r.Metrics["floor95_power_frac"])
	}
	for _, floor := range []float64{0.85, 0.90, 0.95} {
		got := r.Metrics[metricKeyFloor(floor)+"_bips_frac"]
		if got < floor-0.05 {
			t.Errorf("floor %.0f%%: throughput %.1f%% breaches the guarantee", floor*100, got*100)
		}
	}
}

func metricKeyFloor(f float64) string {
	return map[float64]string{0.85: "floor85", 0.90: "floor90", 0.95: "floor95"}[f]
}

// Extension 2: tracking error stays bounded under every injected fault.
func TestExt2FaultRobustness(t *testing.T) {
	r := quick(t, "ext2")
	for i := 0; i < 5; i++ {
		key := "err_case" + string(rune('0'+i))
		if e := r.Metrics[key]; e > 0.15 {
			t.Errorf("fault case %d: tracking error %.1f%%, want bounded <= 15%%", i, e*100)
		}
	}
}

// Extension 3: the identified elasticity is far from cubic, and the
// calibrated exponent does not lose throughput relative to the paper's.
func TestExt3CalibratedExponent(t *testing.T) {
	r := quick(t, "ext3")
	if e := r.Metrics["elasticity"]; e < 1.0 || e > 2.5 {
		t.Errorf("identified elasticity = %.2f, want ~1.5 on this substrate", e)
	}
	if r.Metrics["degradation_calibrated"] > r.Metrics["degradation_cube"]+0.03 {
		t.Errorf("calibrated exponent degrades more (%.1f%%) than the cube root (%.1f%%)",
			r.Metrics["degradation_calibrated"]*100, r.Metrics["degradation_cube"]*100)
	}
}

// TestCheckedHarnesses replays representative harnesses with the invariant
// suite attached (Options.Check): the default loop (fig12), the thermal
// policy (fig18) and fault injection (ext2, which exercises the
// budget-check gating for faulted runs). A violation anywhere fails the
// harness with a structured report.
func TestCheckedHarnesses(t *testing.T) {
	for _, id := range []string{"fig12", "fig18", "ext2"} {
		id := id
		t.Run(id, func(t *testing.T) {
			d, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			r, err := d.Run(Options{Quick: true, Check: true})
			if err != nil {
				t.Fatalf("%s under -check: %v", id, err)
			}
			if r.Text == "" {
				t.Fatalf("%s produced no report", id)
			}
		})
	}
}

// Scorecard: every (mix, configuration) cell reports sane tracking error,
// settling time and efficiency, and the adaptive-gain PIC stays in the same
// tracking family as the fixed-gain baseline it rescales.
func TestScorecard(t *testing.T) {
	r := quick(t, "scorecard")
	mixes := []string{"mix1", "mix2"}
	configsKeys := []string{"fixed", "adaptive", "mpc", "cache"}
	for _, mix := range mixes {
		for _, cfg := range configsKeys {
			prefix := mix + "_" + cfg
			te, ok := r.Metrics[prefix+"_track_err"]
			if !ok {
				t.Fatalf("missing metric %s_track_err", prefix)
			}
			if !(te >= 0 && te < 0.5) {
				t.Errorf("%s: tracking error %.3f out of sane range", prefix, te)
			}
			if bw := r.Metrics[prefix+"_bips_per_w"]; !(bw > 0) {
				t.Errorf("%s: BIPS/W = %v, want positive", prefix, bw)
			}
			if se := r.Metrics[prefix+"_settle_epochs"]; se < 0 {
				t.Errorf("%s: settle epochs %v negative", prefix, se)
			}
		}
		fixed, adaptive := r.Metrics[mix+"_fixed_track_err"], r.Metrics[mix+"_adaptive_track_err"]
		if adaptive > fixed*2+0.02 {
			t.Errorf("%s: adaptive tracking error %.3f far worse than fixed %.3f", mix, adaptive, fixed)
		}
	}
	if len(r.Sets) != len(mixes) {
		t.Errorf("scorecard exported %d trace sets, want one per mix (%d)", len(r.Sets), len(mixes))
	}
}
