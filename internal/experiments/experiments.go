// Package experiments contains one harness per data table and figure of the
// paper's evaluation (§IV). Each harness builds the workload and chip the
// paper describes, runs the managed (and, where the figure calls for it,
// baseline) configurations, and returns both a rendered text report and the
// underlying series, plus headline metrics that the test suite asserts
// "shape" properties against (who wins, by roughly what factor, where the
// crossovers fall).
//
// Figures 1–4 of the paper are architecture diagrams with no data and have
// no harness. Everything else — Tables I–III and Figures 5–19 — is covered;
// see DESIGN.md for the experiment index.
package experiments

import (
	"fmt"
	"sort"
	"sync"

	"github.com/cpm-sim/cpm/internal/core"
	"github.com/cpm-sim/cpm/internal/metrics"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/trace"
	"github.com/cpm-sim/cpm/internal/workload"
)

// Options tune a harness run.
type Options struct {
	// Seed drives the whole experiment deterministically (default 1).
	Seed uint64
	// Quick shortens horizons for use in tests and smoke runs; the shapes
	// asserted by the test suite hold in both modes.
	Quick bool
	// Check attaches the internal/check invariant suite to every run the
	// harness executes; a violation fails the harness with a structured
	// report. Fault-injection runs keep every check except budget
	// conservation, which the injected fault deliberately breaks.
	Check bool
	// Metrics, when non-nil, attaches a metrics.Observer to every run the
	// harness executes, aggregating its telemetry into the registry. Runs
	// are labelled by kind and budget ("cpm-24.00W", "maxbips-24.00W",
	// "unmanaged"), so repeated runs under the same label accumulate.
	Metrics *metrics.Registry
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// epochs returns the number of measured GPM epochs for the current mode.
func (o Options) epochs(full int) int {
	if o.Quick {
		q := full / 4
		if q < 3 {
			q = 3
		}
		return q
	}
	return full
}

// Result is a harness outcome.
type Result struct {
	// ID is the experiment identifier ("fig11", "table1", ...).
	ID string
	// Title describes the reproduced artefact.
	Title string
	// Text is the rendered report (tables and ASCII charts).
	Text string
	// Sets holds the underlying series for CSV export, keyed by a short
	// name; may be empty for pure tables.
	Sets map[string]*trace.Set
	// Metrics are the headline numbers, used by tests and EXPERIMENTS.md.
	Metrics map[string]float64
}

// Definition registers a harness.
type Definition struct {
	ID    string
	Title string
	// Paper summarises what the paper reports for this artefact.
	Paper string
	Run   func(Options) (Result, error)
}

var registry []Definition

func register(d Definition) { registry = append(registry, d) }

// All returns every registered experiment, ordered tables first then
// figures by number.
func All() []Definition {
	out := append([]Definition(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return lessID(out[i].ID, out[j].ID) })
	return out
}

func lessID(a, b string) bool {
	rank := func(id string) (int, int) {
		var n int
		if _, err := fmt.Sscanf(id, "table%d", &n); err == nil {
			return 0, n
		}
		if _, err := fmt.Sscanf(id, "fig%d", &n); err == nil {
			return 1, n
		}
		return 2, 0
	}
	ka, na := rank(a)
	kb, nb := rank(b)
	if ka != kb {
		return ka < kb
	}
	if na != nb {
		return na < nb
	}
	return a < b
}

// ByID returns the experiment registered under id.
func ByID(id string) (Definition, error) {
	for _, d := range registry {
		if d.ID == id {
			return d, nil
		}
	}
	return Definition{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// --- shared setup -----------------------------------------------------------

// calKey caches calibrations, which dominate harness cost and are identical
// across the many experiments sharing a (mix, seed, interval) combination.
type calKey struct {
	mix      string
	seed     uint64
	interval float64
	cores    int
}

var (
	calMu    sync.Mutex
	calCache = map[calKey]core.Calibration{}
)

// setup builds the simulator config for a mix and returns it with its
// (cached) calibration.
func setup(mix workload.Mix, o Options, intervalSec float64) (sim.Config, core.Calibration, error) {
	cfg := sim.DefaultConfig(mix)
	cfg.Seed = o.seed()
	cfg.Parallel = true
	if intervalSec > 0 {
		cfg.IntervalSec = intervalSec
	}
	key := calKey{mix: mix.Name, seed: cfg.Seed, interval: cfg.IntervalSec, cores: mix.Cores()}
	calMu.Lock()
	cal, ok := calCache[key]
	calMu.Unlock()
	if !ok {
		var err error
		cal, err = core.Calibrate(cfg, 60, 240)
		if err != nil {
			return sim.Config{}, core.Calibration{}, err
		}
		calMu.Lock()
		calCache[key] = cal
		calMu.Unlock()
	}
	return cfg, cal, nil
}

func pct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
