package experiments

import (
	"fmt"
	"math"
	"strings"

	"github.com/cpm-sim/cpm/internal/gpm"
	"github.com/cpm-sim/cpm/internal/pic"
	"github.com/cpm-sim/cpm/internal/trace"
	"github.com/cpm-sim/cpm/internal/workload"
)

func init() {
	register(Definition{
		ID:    "scorecard",
		Title: "Adaptive/predictive policy scorecard vs the fixed-gain baseline (extension)",
		Paper: "§III designs the PIC for the identified plant a = 0.79 and fixed gains; the scorecard quantifies what online re-identification and planning buy on top",
		Run:   runScorecard,
	})
}

// scorecardSettleTol is the settling band: an epoch counts as settled when
// its mean power is within this fraction of the budget and every later
// epoch stays there.
const scorecardSettleTol = 0.05

// settleEpochs returns the first epoch index from which every epoch's mean
// power stays within tol of the budget — len(epochs) when the run never
// settles.
func settleEpochs(epochs []float64, budget, tol float64) int {
	settled := len(epochs)
	for i := len(epochs) - 1; i >= 0; i-- {
		if math.Abs(epochs[i]-budget)/budget > tol {
			break
		}
		settled = i
	}
	return settled
}

// meanTrackErr is the mean per-epoch |power − budget|/budget over the whole
// measurement window; runs start cold (no warmup), so the transient counts.
func meanTrackErr(epochs []float64, budget float64) float64 {
	if len(epochs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, p := range epochs {
		sum += math.Abs(p-budget) / budget
	}
	return sum / float64(len(epochs))
}

// runScorecard races the adaptive-gain PIC, the MPC-style GPM and the
// cache-aware policy against the paper's fixed-gain performance-aware
// configuration, on two workload mixes, scoring budget-tracking error,
// settling time and efficiency. Runs start cold (zero warmup) on purpose:
// settling behaviour is half of what adaptation is for.
func runScorecard(o Options) (Result, error) {
	meas := o.epochs(16)
	type config struct {
		key      string
		label    string
		policy   func() gpm.Policy
		adaptive bool
	}
	configs := []config{
		{key: "fixed", label: "fixed-gain PIC (baseline)", policy: nil},
		{key: "adaptive", label: "adaptive-gain PIC", policy: nil, adaptive: true},
		{key: "mpc", label: "MPC-style GPM", policy: func() gpm.Policy { return &gpm.ModelPredictive{} }},
		{key: "cache", label: "cache-aware GPM", policy: func() gpm.Policy { return &gpm.CacheAware{} }},
	}

	var b strings.Builder
	sets := map[string]*trace.Set{}
	metricsOut := map[string]float64{}
	for _, mix := range []workload.Mix{workload.Mix1(), workload.Mix2()} {
		// "Mix-1" → "mix1": metric keys stay flat and shell-friendly.
		mixKey := strings.ToLower(strings.ReplaceAll(mix.Name, "-", ""))
		cfg, cal, err := setup(mix, o, 0)
		if err != nil {
			return Result{}, err
		}
		budget := cal.BudgetW(0.8)
		set := trace.NewSet("epoch")
		var rows [][]string
		for _, cc := range configs {
			p := cpmParams{budgetW: budget, warmEpochs: 0, measEpochs: meas, opts: o}
			if cc.policy != nil {
				p.policy = cc.policy()
			}
			if cc.adaptive {
				p.adaptive = &pic.AdaptiveConfig{SeedGain: cal.PlantGain}
			}
			sum, err := runCPM(cfg, cal, p)
			if err != nil {
				return Result{}, err
			}
			trackErr := meanTrackErr(sum.Epochs, budget)
			settle := settleEpochs(sum.Epochs, budget, scorecardSettleTol)
			bipsPerW := sum.MeanBIPS / sum.MeanPowerW
			rows = append(rows, []string{
				cc.label,
				pct(trackErr),
				fmt.Sprintf("%d/%d", settle, meas),
				fmt.Sprintf("%.4f", bipsPerW),
			})
			series := set.Get(cc.key)
			for _, pw := range sum.Epochs {
				series.Append(math.Abs(pw-budget) / budget)
			}
			prefix := mixKey + "_" + cc.key
			metricsOut[prefix+"_track_err"] = trackErr
			metricsOut[prefix+"_settle_epochs"] = float64(settle)
			metricsOut[prefix+"_bips_per_w"] = bipsPerW
		}
		sets["scorecard-"+mixKey] = set
		fmt.Fprintf(&b, "%s at %.1f W (80%%), cold start, %d epochs:\n\n", mix.Name, budget, meas)
		b.WriteString(trace.Table([]string{"Configuration", "Tracking error", "Settled by epoch", "BIPS/W"}, rows))
		b.WriteString("\n")
	}
	b.WriteString("Tracking error is the mean per-epoch |power − budget|/budget including the\n" +
		"cold-start transient; \"settled by\" is the first epoch after which power stays\n" +
		"within 5% of the budget.\n")
	return Result{
		ID:      "scorecard",
		Title:   "Extension: adaptive/predictive policy scorecard",
		Text:    b.String(),
		Sets:    sets,
		Metrics: metricsOut,
	}, nil
}
