package experiments

import (
	"fmt"
	"strings"

	"github.com/cpm-sim/cpm/internal/trace"
	"github.com/cpm-sim/cpm/internal/workload"
)

func init() {
	register(Definition{
		ID:    "fig11",
		Title: "Budget curves: our scheme vs MaxBIPS",
		Paper: "Figure 11: our scheme closely tracks the budget and never overshoots it; MaxBIPS always consumes below the budget",
		Run:   runFig11,
	})
	register(Definition{
		ID:    "fig12",
		Title: "Performance degradation vs power budget",
		Paper: "Figure 12: ~4% degradation at the 80% budget, rising as budgets shrink",
		Run:   runFig12,
	})
	register(Definition{
		ID:    "fig14",
		Title: "Performance degradation over time at 100% budget",
		Paper: "Figure 14: average 0.9% (maximum ~2.2%) degradation from provisioning mispredictions",
		Run:   runFig14,
	})
}

var budgetSweep = []float64{0.50, 0.60, 0.70, 0.80, 0.90, 0.95}

func runFig11(o Options) (Result, error) {
	cfg, cal, err := setup(workload.Mix1(), o, 0)
	if err != nil {
		return Result{}, err
	}
	meas := o.epochs(16)
	set := trace.NewSet("budget (% of required power)")
	var rows [][]string
	var worstOurGap, worstOurOver float64
	maxbipsAlwaysBelow := true
	for _, frac := range budgetSweep {
		budget := cal.BudgetW(frac)
		ours, err := runCPM(cfg, cal, cpmParams{budgetW: budget, warmEpochs: 6, measEpochs: meas, opts: o})
		if err != nil {
			return Result{}, err
		}
		mb, err := runMaxBIPS(cfg, budget, 20, 6, meas, true, o)
		if err != nil {
			return Result{}, err
		}
		set.Get("Budget").Append(frac * 100)
		set.Get("Our scheme").Append(ours.MeanPowerW / cal.UnmanagedPowerW * 100)
		set.Get("MaxBIPS").Append(mb.MeanPowerW / cal.UnmanagedPowerW * 100)
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", frac*100),
			fmt.Sprintf("%.1f W", budget),
			fmt.Sprintf("%.1f W", ours.MeanPowerW),
			fmt.Sprintf("%.1f W", mb.MeanPowerW),
		})
		gap := (budget - ours.MeanPowerW) / budget
		if gap > worstOurGap {
			worstOurGap = gap
		}
		if over := (ours.MeanPowerW - budget) / budget; over > worstOurOver {
			worstOurOver = over
		}
		if mb.MeanPowerW >= budget {
			maxbipsAlwaysBelow = false
		}
	}
	var b strings.Builder
	b.WriteString(trace.Table([]string{"Budget", "Budget (W)", "Ours (W)", "MaxBIPS (W)"}, rows))
	b.WriteString("\n")
	b.WriteString(set.Chart(70, 14))
	fmt.Fprintf(&b, "\nOur scheme: worst mean undershoot %s, worst mean overshoot %s.\n", pct(worstOurGap), pct(worstOurOver))
	below := 0.0
	if maxbipsAlwaysBelow {
		below = 1
	}
	fmt.Fprintf(&b, "MaxBIPS consumption below budget at every point: %v (paper: always below).\n", maxbipsAlwaysBelow)
	return Result{
		ID:    "fig11",
		Title: "Figure 11",
		Text:  b.String(),
		Sets:  map[string]*trace.Set{"fig11": set},
		Metrics: map[string]float64{
			"ours_worst_undershoot": worstOurGap,
			"ours_worst_overshoot":  worstOurOver,
			"maxbips_always_below":  below,
		},
	}, nil
}

func runFig12(o Options) (Result, error) {
	cfg, cal, err := setup(workload.Mix1(), o, 0)
	if err != nil {
		return Result{}, err
	}
	meas := o.epochs(16)
	base, err := runUnmanagedWindow(cfg, 6, meas, 20, o)
	if err != nil {
		return Result{}, err
	}
	set := trace.NewSet("budget (% of required power)")
	var rows [][]string
	degr := map[float64]float64{}
	for _, frac := range budgetSweep {
		ours, err := runCPM(cfg, cal, cpmParams{budgetW: cal.BudgetW(frac), warmEpochs: 6, measEpochs: meas, opts: o})
		if err != nil {
			return Result{}, err
		}
		d := degradation(ours, base)
		degr[frac] = d
		set.Get("degradation").Append(d * 100)
		rows = append(rows, []string{fmt.Sprintf("%.0f%%", frac*100), pct(d)})
	}
	var b strings.Builder
	b.WriteString(trace.Table([]string{"Budget", "Perf degradation"}, rows))
	b.WriteString("\n")
	b.WriteString(set.Chart(60, 10))
	fmt.Fprintf(&b, "\nAt the 80%% budget: %s degradation (paper: ~4%%).\n", pct(degr[0.80]))
	return Result{
		ID:    "fig12",
		Title: "Figure 12",
		Text:  b.String(),
		Sets:  map[string]*trace.Set{"fig12": set},
		Metrics: map[string]float64{
			"degradation_at_50": degr[0.50],
			"degradation_at_80": degr[0.80],
			"degradation_at_95": degr[0.95],
		},
	}, nil
}

func runFig14(o Options) (Result, error) {
	cfg, cal, err := setup(workload.Mix1(), o, 0)
	if err != nil {
		return Result{}, err
	}
	meas := o.epochs(24)
	ours, err := runCPM(cfg, cal, cpmParams{budgetW: cal.BudgetW(1.0), warmEpochs: 6, measEpochs: meas, opts: o})
	if err != nil {
		return Result{}, err
	}
	// Unmanaged over the identical window (same seed, so epochs align).
	base, err := runUnmanagedWindow(cfg, 6, meas, 20, o)
	if err != nil {
		return Result{}, err
	}
	set := trace.NewSet("GPM invocation")
	var worst, sumD float64
	perEpoch := ours.EpochInstr
	n := len(perEpoch)
	if len(base.EpochInstr) < n {
		n = len(base.EpochInstr)
	}
	for e := 0; e < n; e++ {
		d := 1 - perEpoch[e]/base.EpochInstr[e]
		if d < 0 {
			d = 0
		}
		set.Get("degradation").Append(d * 100)
		sumD += d
		if d > worst {
			worst = d
		}
	}
	avg := sumD / float64(n)
	var b strings.Builder
	fmt.Fprintf(&b, "Per-epoch performance degradation at the 100%% budget:\n\n")
	b.WriteString(set.Chart(70, 10))
	fmt.Fprintf(&b, "\nAverage %s, maximum %s (paper: average 0.9%%, maximum ~2.2%%).\n", pct(avg), pct(worst))
	return Result{
		ID:    "fig14",
		Title: "Figure 14",
		Text:  b.String(),
		Sets:  map[string]*trace.Set{"fig14": set},
		Metrics: map[string]float64{
			"avg_degradation": avg,
			"max_degradation": worst,
		},
	}, nil
}
