package experiments

import (
	"fmt"
	"strings"

	"github.com/cpm-sim/cpm/internal/sensor"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/stats"
	"github.com/cpm-sim/cpm/internal/trace"
	"github.com/cpm-sim/cpm/internal/workload"
)

func init() {
	register(Definition{
		ID:    "fig5",
		Title: "Actual power consumption vs difference-model prediction",
		Paper: "Figure 5: bodytrack on all islands with white-noise DVFS; model error well within 10%",
		Run:   runFig5,
	})
	register(Definition{
		ID:    "fig6",
		Title: "Correlation between power and processor utilization per benchmark",
		Paper: "Figure 6: linear fits per PARSEC benchmark, average R^2 = 0.96",
		Run:   runFig6,
	})
}

// runFig5 reproduces the §II-D validation: run bodytrack on every core (as
// the paper does — bodytrack was held out of the gain fit), change DVFS
// levels with white noise, and compare measured island power against the
// forward prediction of P(t+1) = P(t) + a·d(t).
func runFig5(o Options) (Result, error) {
	mix := workload.Mix{Name: "btrack-all", Islands: [][]string{
		{"btrack", "btrack"}, {"btrack", "btrack"}, {"btrack", "btrack"}, {"btrack", "btrack"},
	}}
	cfg, cal, err := setup(mix, o, 0)
	if err != nil {
		return Result{}, err
	}
	cmp, err := sim.New(cfg)
	if err != nil {
		return Result{}, err
	}
	steps := 45
	if o.Quick {
		steps = 20
	}
	const hold = 4
	rng := stats.NewRand(stats.DeriveSeed(cfg.Seed, 0xf165))
	table := cmp.IslandTable(0)

	var actual []float64
	var freqDeltas []float64
	prevNorm := table.NormFreq(table.Max().FreqMHz)
	// Warm the caches before measuring.
	for k := 0; k < 60; k++ {
		cmp.Step()
	}
	for s := 0; s < steps; s++ {
		lvl := rng.Intn(table.Levels())
		norm := table.NormFreq(table.Point(lvl).FreqMHz)
		for i := 0; i < cmp.NumIslands(); i++ {
			cmp.SetLevel(i, lvl)
		}
		var mean float64
		for k := 0; k < hold; k++ {
			r := cmp.Step()
			if k >= hold/2 {
				mean += r.Islands[0].PowerFracIsland
			}
		}
		actual = append(actual, mean/float64(hold-hold/2))
		if s > 0 {
			freqDeltas = append(freqDeltas, norm-prevNorm)
		}
		prevNorm = norm
	}

	predicted := sensor.PredictOneStep(actual, cal.PlantGain, freqDeltas)
	mape, err := stats.MAPE(actual, predicted)
	if err != nil {
		return Result{}, err
	}

	set := trace.NewSet("DVFS change")
	for i := range actual {
		set.Get("Actual").Append(actual[i] * 100)
		set.Get("Model").Append(predicted[i] * 100)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "System gain a = %.3f (paper: 0.79), fitted on the PARSEC suite excluding bodytrack.\n", cal.PlantGain)
	fmt.Fprintf(&b, "Validation on bodytrack with white-noise DVFS: mean absolute error %.1f%% (paper: well within 10%%).\n\n", mape)
	b.WriteString(set.Chart(70, 14))
	return Result{
		ID:    "fig5",
		Title: "Figure 5",
		Text:  b.String(),
		Sets:  map[string]*trace.Set{"fig5": set},
		Metrics: map[string]float64{
			"plant_gain": cal.PlantGain,
			"mape_pct":   mape,
		},
	}, nil
}

// runFig6 reproduces the transducer calibration study: each PARSEC
// benchmark runs on all cores of an 8-core CMP, DVFS levels sweep with held
// white noise, and measured (utilization, power) pairs are fitted linearly.
func runFig6(o Options) (Result, error) {
	windows := 40
	if o.Quick {
		windows = 16
	}
	var rows [][]string
	var r2s []float64
	sets := map[string]*trace.Set{}
	for _, prof := range workload.PARSEC() {
		mix := workload.Mix{Name: "solo-" + prof.Name, Islands: [][]string{
			{prof.Name, prof.Name}, {prof.Name, prof.Name},
			{prof.Name, prof.Name}, {prof.Name, prof.Name},
		}}
		cfg := sim.DefaultConfig(mix)
		cfg.Seed = o.seed()
		cfg.Parallel = true
		cmp, err := sim.New(cfg)
		if err != nil {
			return Result{}, err
		}
		rng := stats.NewRand(stats.DeriveSeed(cfg.Seed, 0xf160, uint64(len(rows))))
		for k := 0; k < 60; k++ {
			cmp.Step()
		}
		var utils, fracs []float64
		const hold = 6
		for w := 0; w < windows; w++ {
			lvl := rng.Intn(cmp.IslandTable(0).Levels())
			for i := 0; i < cmp.NumIslands(); i++ {
				cmp.SetLevel(i, lvl)
			}
			var su, sp float64
			for k := 0; k < hold; k++ {
				r := cmp.Step()
				if k < 2 {
					continue
				}
				su += r.Islands[0].MeanUtil
				sp += r.Islands[0].PowerFracIsland
			}
			utils = append(utils, su/(hold-2))
			fracs = append(fracs, sp/(hold-2))
		}
		tr, r2, err := sensor.FitTransducer(utils, fracs)
		if err != nil {
			return Result{}, err
		}
		r2s = append(r2s, r2)
		rows = append(rows, []string{
			prof.Name,
			fmt.Sprintf("P = %.3f·U %+.3f", tr.K0, tr.K1),
			fmt.Sprintf("%.3f", r2),
		})
		set := trace.NewSet("utilization")
		for i := range utils {
			set.Get("power").Append(fracs[i])
			set.Get("fit").Append(tr.PowerFrac(utils[i]))
		}
		sets["fig6-"+prof.Name] = set
	}
	avg := stats.Mean(r2s)
	var b strings.Builder
	b.WriteString(trace.Table([]string{"Benchmark", "Linear fit (island power fraction)", "R^2"}, rows))
	fmt.Fprintf(&b, "\nAverage R^2 = %.3f (paper: 0.96).\n", avg)
	// stats.Min of an empty slice is +Inf (and Mean NaN); omit the metrics
	// rather than hand non-finite values to downstream encoders.
	m := map[string]float64{}
	if len(r2s) > 0 {
		m["avg_r2"] = avg
		m["min_r2"] = stats.Min(r2s)
	}
	return Result{
		ID:      "fig6",
		Title:   "Figure 6",
		Text:    b.String(),
		Sets:    sets,
		Metrics: m,
	}, nil
}
