package experiments

import "testing"

// TestTechNodeStudy pins the shape of the budget-split-vs-node study: every
// node reports a best split inside the swept grid with positive BIPS, the
// legacy 90 nm chip and the identity 45 nm node agree exactly, and the
// scaled chips' budgets shrink with the node.
func TestTechNodeStudy(t *testing.T) {
	r := quick(t, "technode")
	nodes := []string{"90nm-base", "45nm-itrs", "32nm-itrs", "22nm-itrs", "16nm-itrs", "11nm-itrs", "8nm-itrs"}
	for _, n := range nodes {
		share := r.Metrics["opt_big_share_"+n]
		if share < 0.5 || share > 0.85 {
			t.Errorf("%s optimal big share %.2f outside the swept grid", n, share)
		}
		if bips := r.Metrics["bips_"+n]; bips <= 0 {
			t.Errorf("%s best BIPS %.3f not positive", n, bips)
		}
	}
	if r.Metrics["bips_90nm-base"] != r.Metrics["bips_45nm-itrs"] ||
		r.Metrics["budget_w_90nm-base"] != r.Metrics["budget_w_45nm-itrs"] {
		t.Error("45 nm ITRS is the identity scaling and must match the 90 nm-class baseline exactly")
	}
	for i := 2; i < len(nodes); i++ {
		prev, cur := r.Metrics["budget_w_"+nodes[i-1]], r.Metrics["budget_w_"+nodes[i]]
		if cur >= prev {
			t.Errorf("budget did not shrink %s -> %s: %.2f W >= %.2f W", nodes[i-1], nodes[i], cur, prev)
		}
	}
}
