package experiments

import (
	"fmt"
	"strings"

	"github.com/cpm-sim/cpm/internal/core"
	"github.com/cpm-sim/cpm/internal/gpm"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/thermal"
	"github.com/cpm-sim/cpm/internal/trace"
	"github.com/cpm-sim/cpm/internal/variation"
	"github.com/cpm-sim/cpm/internal/workload"
)

func init() {
	register(Definition{
		ID:    "fig18",
		Title: "Thermal-aware power provisioning",
		Paper: "Figure 18: with the thermal-aware policy hotspot constraints are never violated, at some performance cost; the performance-aware policy violates them part of the time",
		Run:   runFig18,
	})
	register(Definition{
		ID:    "fig19",
		Title: "Variation-aware power provisioning",
		Paper: "Figure 19/20: with intra-die leakage variation (1.2x/1.5x/2x/1x), the variation-aware policy trades some throughput for a better power/throughput ratio",
		Run:   runFig19,
	})
}

// thermalPolicyFor builds the Figure 18 constraint set over the 2x4
// floorplan of single-core islands.
func thermalPolicyFor() (*gpm.ThermalAware, error) {
	fp, err := thermal.Grid(2, 4)
	if err != nil {
		return nil, err
	}
	return &gpm.ThermalAware{
		Base:                 &gpm.PerformanceAware{},
		Floorplan:            fp,
		AdjacentPairCap:      0.30,
		ConsecutiveLimit:     2,
		SoloCap:              0.20,
		SoloConsecutiveLimit: 4,
	}, nil
}

func runFig18(o Options) (Result, error) {
	mix := workload.ThermalMix()
	cfg, cal, err := setup(mix, o, 0)
	if err != nil {
		return Result{}, err
	}
	meas := o.epochs(20)
	// A tight budget (50% of required power) is what makes hotspot
	// formation possible at all: the performance-aware policy can then
	// concentrate a large share of the (small) budget on two adjacent
	// islands, which at generous budgets is prevented by each island's own
	// consumption ceiling.
	const budgetFrac = 0.5
	budget := cal.BudgetW(budgetFrac)

	base, err := runUnmanagedWindow(cfg, 6, meas, 20, o)
	if err != nil {
		return Result{}, err
	}
	perf, err := runCPM(cfg, cal, cpmParams{
		budgetW: budget, policy: &gpm.PerformanceAware{}, warmEpochs: 6, measEpochs: meas, opts: o,
	})
	if err != nil {
		return Result{}, err
	}
	thermalPolicy, err := thermalPolicyFor()
	if err != nil {
		return Result{}, err
	}
	therm, err := runCPM(cfg, cal, cpmParams{
		budgetW: budget, policy: thermalPolicy, warmEpochs: 6, measEpochs: meas, opts: o,
	})
	if err != nil {
		return Result{}, err
	}

	checker, err := thermalPolicyFor()
	if err != nil {
		return Result{}, err
	}
	perfViolations := checker.Violations(budget, perf.AllocTrace)
	checker2, err := thermalPolicyFor()
	if err != nil {
		return Result{}, err
	}
	thermViolations := checker2.Violations(budget, therm.AllocTrace)
	violFrac := 0.0
	if len(perf.AllocTrace) > 0 {
		violFrac = float64(perfViolations) / float64(len(perf.AllocTrace))
	}

	dPerf := degradation(perf, base)
	dTherm := degradation(therm, base)

	var b strings.Builder
	fmt.Fprintf(&b, "8-core CMP, one core per island (Fig 18a: mesa/bzip/gcc/sixtrack x2 on a 2x4 die), %.0f%% budget.\n\n", budgetFrac*100)
	b.WriteString(trace.Table(
		[]string{"Policy", "Perf degradation", "Constraint violations", "Peak temp (C)"},
		[][]string{
			{"Performance-aware", pct(dPerf), fmt.Sprintf("%d/%d epochs (%s)", perfViolations, len(perf.AllocTrace), pct(violFrac)), f2(perf.MaxTempC)},
			{"Thermal-aware", pct(dTherm), fmt.Sprintf("%d/%d epochs", thermViolations, len(therm.AllocTrace)), f2(therm.MaxTempC)},
		}))
	b.WriteString("\nConstraints (representative, as in the paper): two adjacent islands may not hold more\nthan 30% of the budget for more than 2 consecutive epochs, nor a single island more than\n20% for more than 4 consecutive epochs; a sustained breach is a presumed hotspot.\n")
	return Result{
		ID:    "fig18",
		Title: "Figure 18",
		Text:  b.String(),
		Metrics: map[string]float64{
			"perf_degradation":    dPerf,
			"thermal_degradation": dTherm,
			"perf_violation_frac": violFrac,
			"thermal_violations":  float64(thermViolations),
			"perf_peak_temp":      perf.MaxTempC,
			"thermal_peak_temp":   therm.MaxTempC,
		},
	}, nil
}

func runFig19(o Options) (Result, error) {
	mix := workload.Mix1()
	// Apply the §IV-B intra-die variation: islands 1-3 leak 1.2x, 1.5x, 2x
	// relative to island 4. The chip is calibrated *with* its variation, as
	// any real per-die characterization would be — a 2x-leakage island's
	// power-per-level table differs materially from the nominal one.
	cfg := sim.DefaultConfig(mix)
	cfg.Seed = o.seed()
	cfg.Parallel = true
	cfg.Variation = variation.PaperIslands(2)
	cal, err := calibrateFor(cfg)
	if err != nil {
		return Result{}, err
	}
	meas := o.epochs(20)
	const budgetFrac = 0.8
	budget := cal.BudgetW(budgetFrac)

	perf, err := runCPM(cfg, cal, cpmParams{
		budgetW: budget, policy: &gpm.PerformanceAware{}, warmEpochs: 6, measEpochs: meas, opts: o,
	})
	if err != nil {
		return Result{}, err
	}
	va, err := runCPM(cfg, cal, cpmParams{
		budgetW: budget, policy: &gpm.VariationAware{StepFrac: 0.08, HoldIntervals: 1, MinShareFrac: 0.7},
		warmEpochs: 6, measEpochs: meas, opts: o,
	})
	if err != nil {
		return Result{}, err
	}

	leaks := []float64{1.2, 1.5, 2.0, 1.0}
	var rows [][]string
	var meanThroughputLoss, meanPTImprove float64
	metrics := map[string]float64{}
	for i := 0; i < 4; i++ {
		perfBIPS := mean(perf.IslandBIPS[i])
		vaBIPS := mean(va.IslandBIPS[i])
		perfPT := mean(perf.IslandPower[i]) / perfBIPS
		vaPT := mean(va.IslandPower[i]) / vaBIPS
		tLoss := 1 - vaBIPS/perfBIPS
		ptImp := 1 - vaPT/perfPT
		meanThroughputLoss += tLoss / 4
		meanPTImprove += ptImp / 4
		metrics[fmt.Sprintf("pt_improvement_island%d", i+1)] = ptImp
		metrics[fmt.Sprintf("throughput_loss_island%d", i+1)] = tLoss
		rows = append(rows, []string{
			fmt.Sprintf("Island %d (%.1fx leakage)", i+1, leaks[i]),
			pct(tLoss),
			pct(ptImp),
		})
	}
	metrics["mean_throughput_loss"] = meanThroughputLoss
	metrics["mean_pt_improvement"] = meanPTImprove

	var b strings.Builder
	fmt.Fprintf(&b, "Mix-1 with intra-die leakage variation, %.0f%% budget.\n", budgetFrac*100)
	b.WriteString("Variation-aware greedy EPI policy relative to the performance-aware policy:\n\n")
	b.WriteString(trace.Table([]string{"Island", "Throughput degradation", "Power/throughput improvement"}, rows))
	fmt.Fprintf(&b, "\nMean: %s throughput for %s better power/throughput.\n",
		pct(meanThroughputLoss), pct(meanPTImprove))
	return Result{
		ID:      "fig19",
		Title:   "Figures 19/20",
		Text:    b.String(),
		Metrics: metrics,
	}, nil
}

// calibrateFor runs (and caches) a calibration for an explicit simulator
// configuration, for experiments whose chip differs from the plain mix
// (e.g. process variation applied).
func calibrateFor(cfg sim.Config) (core.Calibration, error) {
	key := calKey{mix: cfg.Mix.Name + "+var", seed: cfg.Seed, interval: cfg.IntervalSec, cores: cfg.Mix.Cores()}
	calMu.Lock()
	cal, ok := calCache[key]
	calMu.Unlock()
	if ok {
		return cal, nil
	}
	cal, err := core.Calibrate(cfg, 60, 240)
	if err != nil {
		return core.Calibration{}, err
	}
	calMu.Lock()
	calCache[key] = cal
	calMu.Unlock()
	return cal, nil
}
