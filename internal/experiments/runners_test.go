package experiments

import (
	"math"
	"testing"
)

// TestDegradationGuardsBaseline pins the wrapper's behaviour on degenerate
// baselines: a run compared against a chip that executed (essentially)
// nothing reports zero degradation instead of ±Inf or NaN.
func TestDegradationGuardsBaseline(t *testing.T) {
	cases := []struct {
		name      string
		run, base float64
		want      float64
	}{
		{"zero baseline", 5, 0, 0},
		{"near-zero baseline", 5, 1e-12, 0},
		{"normal", 90, 100, 0.1},
		{"run above baseline", 110, 100, 0},
	}
	for _, c := range cases {
		got := degradation(runSummary{Instructions: c.run}, runSummary{Instructions: c.base})
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("%s: degradation = %v", c.name, got)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: degradation = %v, want %v", c.name, got, c.want)
		}
	}
}
