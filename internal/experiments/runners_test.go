package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/cpm-sim/cpm/internal/metrics"
)

// TestDegradationGuardsBaseline pins the wrapper's behaviour on degenerate
// baselines: a run compared against a chip that executed (essentially)
// nothing reports zero degradation instead of ±Inf or NaN.
func TestDegradationGuardsBaseline(t *testing.T) {
	cases := []struct {
		name      string
		run, base float64
		want      float64
	}{
		{"zero baseline", 5, 0, 0},
		{"near-zero baseline", 5, 1e-12, 0},
		{"normal", 90, 100, 0.1},
		{"run above baseline", 110, 100, 0},
	}
	for _, c := range cases {
		got := degradation(runSummary{Instructions: c.run}, runSummary{Instructions: c.base})
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("%s: degradation = %v", c.name, got)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: degradation = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestOptionsMetricsRecordsTelemetry runs one experiment with a registry in
// Options and checks the runner plumbing attached the telemetry observer:
// the registry ends up with labelled families and a round-trippable export.
func TestOptionsMetricsRecordsTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	reg := metrics.NewRegistry()
	d, err := ByID("fig9")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(Options{Quick: true, Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	out := prom.String()
	if !strings.Contains(out, "cpm_intervals_total") {
		t.Errorf("no telemetry recorded:\n%s", out)
	}
	// runCPM labels its runs by the absolute budget, e.g. cpm-24.00W.
	if !strings.Contains(out, `run="cpm-`) {
		t.Errorf("cpm run label missing:\n%s", out)
	}
	if _, err := metrics.ParsePrometheus(strings.NewReader(out)); err != nil {
		t.Errorf("experiment telemetry does not round-trip: %v", err)
	}
}
