package experiments

import (
	"fmt"
	"math"
	"strings"

	"github.com/cpm-sim/cpm/internal/engine"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/trace"
	"github.com/cpm-sim/cpm/internal/workload"
)

func init() {
	register(Definition{
		ID:    "fig7",
		Title: "Dynamic power provisioning across four islands (80% budget)",
		Paper: "Figure 7: per-island provisions vary per interval, tracked by the GPM; island demands range ~13-25% of chip power",
		Run:   runFig7,
	})
	register(Definition{
		ID:    "fig8",
		Title: "Per-island target vs actual power over 20 GPM invocations",
		Paper: "Figure 8: PICs track the GPM provisions as they move",
		Run:   runFig8,
	})
	register(Definition{
		ID:    "fig9",
		Title: "PIC tracking between two successive GPM invocations",
		Paper: "Figure 9: overshoot mostly within 2%, settling within 5-6 PIC invocations",
		Run:   runFig9,
	})
	register(Definition{
		ID:    "fig10",
		Title: "Chip-wide power tracking at 80% budget",
		Paper: "Figure 10: over/undershoot mostly within 4% of the budget",
		Run:   runFig10,
	})
}

func runFig7(o Options) (Result, error) {
	cfg, cal, err := setup(workload.Mix1(), o, 0)
	if err != nil {
		return Result{}, err
	}
	budget := cal.BudgetW(0.8)
	// The provision series is recorded live by an epoch observer rather
	// than scraped from the summary afterwards.
	set := trace.NewSet("GPM invocation")
	obs := engine.Funcs{OnEpoch: func(e engine.Epoch) {
		for i, a := range e.AllocW {
			set.Get(fmt.Sprintf("Island%d", i+1)).Append(a / cal.UnmanagedPowerW * 100)
		}
	}}
	if _, err := runCPM(cfg, cal, cpmParams{
		budgetW: budget, warmEpochs: 6, measEpochs: o.epochs(20), opts: o,
		observers: []engine.Observer{obs},
	}); err != nil {
		return Result{}, err
	}
	var lo, hi float64 = math.Inf(1), math.Inf(-1)
	for _, s := range set.Series() {
		if v := s.Min(); v < lo {
			lo = v
		}
		if v := s.Max(); v > hi {
			hi = v
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Budget: 80%% of required chip power (%.1f W). Per-island provisions (%% of required power):\n\n", budget)
	b.WriteString(set.Chart(70, 14))
	fmt.Fprintf(&b, "\nProvision range across islands and epochs: %.1f%% – %.1f%% (paper: ~13%%–25%%).\n", lo, hi)
	// An empty recording leaves lo/hi at ±Inf; omit the metrics rather than
	// hand non-finite values to downstream encoders.
	m := map[string]float64{}
	if !math.IsInf(lo, 0) && !math.IsInf(hi, 0) {
		m["min_share_pct"] = lo
		m["max_share_pct"] = hi
	}
	return Result{
		ID:      "fig7",
		Title:   "Figure 7",
		Text:    b.String(),
		Sets:    map[string]*trace.Set{"fig7": set},
		Metrics: m,
	}, nil
}

func runFig8(o Options) (Result, error) {
	cfg, cal, err := setup(workload.Mix1(), o, 0)
	if err != nil {
		return Result{}, err
	}
	budget := cal.BudgetW(0.8)
	sum, err := runCPM(cfg, cal, cpmParams{
		budgetW: budget, warmEpochs: 6, measEpochs: o.epochs(20), opts: o,
	})
	if err != nil {
		return Result{}, err
	}
	sets := map[string]*trace.Set{}
	var b strings.Builder
	fmt.Fprintf(&b, "Per-island target (GPM provision) vs actual power, %% of required chip power:\n")
	worstGap := 0.0
	for i := range sum.IslandAlloc {
		set := trace.NewSet("GPM invocation")
		tgt := set.Get("target")
		act := set.Get("actual")
		for e := range sum.IslandAlloc[i] {
			tv := sum.IslandAlloc[i][e] / cal.UnmanagedPowerW * 100
			av := sum.IslandPower[i][e] / cal.UnmanagedPowerW * 100
			tgt.Append(tv)
			act.Append(av)
			if gap := math.Abs(av - tv); gap > worstGap {
				worstGap = gap
			}
		}
		sets[fmt.Sprintf("fig8-island%d", i+1)] = set
		fmt.Fprintf(&b, "\nIsland %d:\n%s", i+1, set.Chart(70, 10))
	}
	fmt.Fprintf(&b, "\nWorst |actual-target| = %.2f%% of required chip power.\n", worstGap)
	return Result{
		ID:    "fig8",
		Title: "Figure 8",
		Text:  b.String(),
		Sets:  sets,
		Metrics: map[string]float64{
			"worst_gap_pct_chip": worstGap,
		},
	}, nil
}

// runFig9 zooms into PIC granularity between two GPM invocations, measuring
// overshoot and settling as the paper defines them (relative to the island
// target, 2% settling band).
func runFig9(o Options) (Result, error) {
	cfg, cal, err := setup(workload.Mix1(), o, 0)
	if err != nil {
		return Result{}, err
	}
	budget := cal.BudgetW(0.8)
	sum, err := runCPM(cfg, cal, cpmParams{
		budgetW: budget, warmEpochs: 8, measEpochs: o.epochs(12), keepSteps: true, opts: o,
	})
	if err != nil {
		return Result{}, err
	}
	// For every island and epoch, measure overshoot of actual island power
	// vs target across the 20 PIC invocations of the epoch, and settling
	// time into a band accounting for one DVFS quantum of resolution.
	nIslands := len(sum.IslandAlloc)
	overshoots := make([]float64, 0, 64)
	settles := make([]float64, 0, 64)
	sets := map[string]*trace.Set{}
	var epochSeries [][]float64
	for i := 0; i < nIslands; i++ {
		epochSeries = append(epochSeries, nil)
	}
	prevTarget := make([]float64, nIslands)
	havePrevTarget := false
	for k, st := range sum.Steps {
		for i, ir := range st.Sim.Islands {
			epochSeries[i] = append(epochSeries[i], ir.PowerW)
		}
		if (k+1)%20 == 0 {
			for i := 0; i < nIslands; i++ {
				target := st.AllocW[i]
				series := epochSeries[i][len(epochSeries[i])-20:]
				if target > 0 && havePrevTarget {
					// Overshoot as the paper measures it (§IV): the peak
					// past the new target when the budget *rose* — the PIC
					// approaches from below and may cross over. When the
					// budget fell, the initial samples sit at the old
					// operating point and are the step input itself, not
					// overshoot.
					if target >= prevTarget[i] {
						peak := 0.0
						for _, v := range series {
							if v > peak {
								peak = v
							}
						}
						if over := (peak - target) / target; over > 0 {
							overshoots = append(overshoots, over)
						} else {
							overshoots = append(overshoots, 0)
						}
					}
					// Settling: first invocation from which power stays in
					// the band (2% of target + half a DVFS quantum).
					quantum := quantumW(cfg, i)
					band := 0.02*target + quantum/2
					settle := -1
					for s := len(series) - 1; s >= 0; s-- {
						if math.Abs(series[s]-target) > band {
							break
						}
						settle = s
					}
					if settle >= 0 {
						settles = append(settles, float64(settle))
					}
				}
				prevTarget[i] = target
			}
			havePrevTarget = true
		}
	}
	// Render the last measured epoch per island.
	for i := 0; i < nIslands; i++ {
		set := trace.NewSet("PIC invocation")
		series := epochSeries[i][len(epochSeries[i])-20:]
		tgt := sum.Steps[len(sum.Steps)-1].AllocW[i]
		for _, v := range series {
			set.Get("actual").Append(v)
			set.Get("target").Append(tgt)
		}
		sets[fmt.Sprintf("fig9-island%d", i+1)] = set
	}

	meanOver := mean(overshoots)
	p95Over := percentile(overshoots, 0.95)
	meanSettle := mean(settles)
	var b strings.Builder
	fmt.Fprintf(&b, "PIC tracking between successive GPM invocations over %d island-epochs:\n", len(overshoots))
	fmt.Fprintf(&b, "  mean overshoot      = %s of target (paper: mostly within 2%%)\n", pct(meanOver))
	fmt.Fprintf(&b, "  95th pct overshoot  = %s of target\n", pct(p95Over))
	fmt.Fprintf(&b, "  mean settling time  = %.1f PIC invocations (paper: 5-6)\n", meanSettle)
	for i := 0; i < nIslands; i++ {
		fmt.Fprintf(&b, "\nIsland %d, last epoch (W):\n%s", i+1, sets[fmt.Sprintf("fig9-island%d", i+1)].Chart(60, 8))
	}
	return Result{
		ID:    "fig9",
		Title: "Figure 9",
		Text:  b.String(),
		Sets:  sets,
		Metrics: map[string]float64{
			"mean_overshoot":   meanOver,
			"p95_overshoot":    p95Over,
			"mean_settle_invk": meanSettle,
		},
	}, nil
}

func runFig10(o Options) (Result, error) {
	cfg, cal, err := setup(workload.Mix1(), o, 0)
	if err != nil {
		return Result{}, err
	}
	budget := cal.BudgetW(0.8)
	set := trace.NewSet("GPM invocation")
	worstOver, worstUnder := 0.0, 0.0
	obs := engine.Funcs{OnEpoch: func(e engine.Epoch) {
		set.Get("Pactual").Append(e.MeanPowerW / cal.UnmanagedPowerW * 100)
		set.Get("Ptarget").Append(80)
		dev := (e.MeanPowerW - budget) / budget
		if dev > worstOver {
			worstOver = dev
		}
		if -dev > worstUnder {
			worstUnder = -dev
		}
	}}
	sum, err := runCPM(cfg, cal, cpmParams{
		budgetW: budget, warmEpochs: 6, measEpochs: o.epochs(40), opts: o,
		observers: []engine.Observer{obs},
	})
	if err != nil {
		return Result{}, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Chip power (%% of required power) vs the 80%% budget:\n\n")
	b.WriteString(set.Chart(70, 12))
	fmt.Fprintf(&b, "\nWorst overshoot %s, worst undershoot %s (paper: mostly within 4%%).\n",
		pct(worstOver), pct(worstUnder))
	return Result{
		ID:    "fig10",
		Title: "Figure 10",
		Text:  b.String(),
		Sets:  map[string]*trace.Set{"fig10": set},
		Metrics: map[string]float64{
			"worst_overshoot":  worstOver,
			"worst_undershoot": worstUnder,
			"mean_power_w":     sum.MeanPowerW,
			"budget_w":         budget,
		},
	}, nil
}

// quantumW estimates the island power change of one DVFS step near the top
// of the table, the tracking resolution.
func quantumW(cfg sim.Config, islandIdx int) float64 {
	// One level step changes island power by roughly swing/(levels-1);
	// use the calibrated island max power with a 0.6 swing estimate. The
	// island's own table sets the step count; a single-point table has no
	// steps, so the divisor clamps to 1 (the quantum degenerates to the
	// whole swing) instead of dividing by zero.
	c, err := sim.New(cfg)
	if err != nil {
		return 1
	}
	steps := c.IslandTable(islandIdx).Levels() - 1
	if steps < 1 {
		steps = 1
	}
	return 0.6 * c.IslandMaxPowerW(islandIdx) / float64(steps)
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	ys := append([]float64(nil), xs...)
	for i := 1; i < len(ys); i++ {
		for j := i; j > 0 && ys[j] < ys[j-1]; j-- {
			ys[j], ys[j-1] = ys[j-1], ys[j]
		}
	}
	idx := int(p * float64(len(ys)-1))
	return ys[idx]
}
