package mem

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTableIConfig(t *testing.T) {
	cfg := TableI()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 100 ns at 2 GHz = 200 cycles, Table I's number.
	if got := s.LatencyCycles(2000); math.Abs(got-200) > 1e-9 {
		t.Errorf("unloaded latency at 2 GHz = %v cycles, want 200", got)
	}
	// At 600 MHz the same 100 ns is only 60 cycles.
	if got := s.LatencyCycles(600); math.Abs(got-60) > 1e-9 {
		t.Errorf("unloaded latency at 600 MHz = %v cycles, want 60", got)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{BaseLatencyNs: 0, BandwidthGBs: 10, BlockBytes: 64, MaxQueueFactor: 2},
		{BaseLatencyNs: 100, BandwidthGBs: 0, BlockBytes: 64, MaxQueueFactor: 2},
		{BaseLatencyNs: 100, BandwidthGBs: 10, BlockBytes: 0, MaxQueueFactor: 2},
		{BaseLatencyNs: 100, BandwidthGBs: 10, BlockBytes: 64, MaxQueueFactor: 0.5},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestQueueingDelayGrowsWithTraffic(t *testing.T) {
	s, err := New(TableI())
	if err != nil {
		t.Fatal(err)
	}
	unloaded := s.LatencyNs()

	// Half-utilized channel: 12.8 GB/s over a 2.5 ms interval.
	blocks := uint64(12.8e9 * 0.0025 / 64)
	s.ObserveTraffic(blocks, 0.0025)
	if math.Abs(s.Utilization()-0.5) > 0.01 {
		t.Errorf("utilization = %v, want 0.5", s.Utilization())
	}
	half := s.LatencyNs()
	if math.Abs(half-2*unloaded) > 1e-6 {
		t.Errorf("latency at ρ=0.5 = %v, want 2x unloaded (%v)", half, 2*unloaded)
	}
}

func TestQueueingDelayCapped(t *testing.T) {
	s, err := New(TableI())
	if err != nil {
		t.Fatal(err)
	}
	// Oversubscribed channel.
	s.ObserveTraffic(1<<40, 0.0025)
	if got := s.LatencyNs(); math.Abs(got-100*4) > 1e-9 {
		t.Errorf("saturated latency = %v, want capped at 400", got)
	}
}

func TestObserveTrafficIgnoresBadInterval(t *testing.T) {
	s, _ := New(TableI())
	s.ObserveTraffic(100, 0.0025)
	u := s.Utilization()
	s.ObserveTraffic(999999, 0)
	if s.Utilization() != u {
		t.Error("zero-length interval should be ignored")
	}
}

// Property: latency is monotone in observed traffic and never below the
// unloaded latency nor above the cap.
func TestLatencyMonotoneProperty(t *testing.T) {
	f := func(aRaw, bRaw uint32) bool {
		a, b := uint64(aRaw), uint64(bRaw)
		if a > b {
			a, b = b, a
		}
		s1, _ := New(TableI())
		s2, _ := New(TableI())
		s1.ObserveTraffic(a, 0.0025)
		s2.ObserveTraffic(b, 0.0025)
		l1, l2 := s1.LatencyNs(), s2.LatencyNs()
		cfg := TableI()
		return l1 <= l2+1e-9 &&
			l1 >= cfg.BaseLatencyNs-1e-9 &&
			l2 <= cfg.BaseLatencyNs*cfg.MaxQueueFactor+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
