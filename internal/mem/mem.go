// Package mem models the off-chip memory system of the CMP simulator.
//
// Table I of the paper specifies a 200-cycle access delay at the 2 GHz
// nominal frequency, i.e. a fixed 100 ns latency: DRAM latency does not
// shrink when cores are clocked down, which is precisely what makes
// memory-bound applications insensitive to DVFS (and CPU-bound applications
// sensitive). On top of the fixed latency, a simple open-loop queueing term
// adds contention delay as aggregate bandwidth demand approaches capacity —
// enough to couple co-scheduled memory-bound applications without requiring
// cycle-accurate DRAM state.
package mem

import "errors"

// Config describes the memory system.
type Config struct {
	// BaseLatencyNs is the unloaded access latency in nanoseconds.
	// 100 ns corresponds to Table I's 200 cycles at 2 GHz.
	BaseLatencyNs float64
	// BandwidthGBs is the peak sustainable bandwidth in GB/s.
	BandwidthGBs float64
	// BlockBytes is the transfer granularity (cache line size).
	BlockBytes int
	// MaxQueueFactor caps the queueing multiplier so that saturated
	// intervals produce bounded rather than infinite latencies.
	MaxQueueFactor float64
}

// TableI returns the paper's memory configuration: 200 cycles at 2 GHz over
// 64-byte lines, behind a dual-channel DDR3-class 25.6 GB/s memory system
// (the provisioning typical of the paper's era for an 8-core part, and
// enough that queueing stays a second-order effect at that scale — it
// reappears for the 32-core configuration, as it would in hardware).
func TableI() Config {
	return Config{BaseLatencyNs: 100, BandwidthGBs: 25.6, BlockBytes: 64, MaxQueueFactor: 4}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.BaseLatencyNs <= 0 {
		return errors.New("mem: non-positive base latency")
	}
	if c.BandwidthGBs <= 0 {
		return errors.New("mem: non-positive bandwidth")
	}
	if c.BlockBytes <= 0 {
		return errors.New("mem: non-positive block size")
	}
	if c.MaxQueueFactor < 1 {
		return errors.New("mem: queue factor cap below 1")
	}
	return nil
}

// System is the chip-wide memory model. It is driven once per control
// interval with the aggregate miss traffic of the previous interval, from
// which it derives the effective latency every core observes in the current
// interval. Using previous-interval traffic keeps the parallel simulator
// free of cross-island synchronization inside an interval.
type System struct {
	cfg         Config
	utilization float64 // demand/capacity of the last observed interval
}

// New builds a memory system.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &System{cfg: cfg}, nil
}

// Config returns the configuration.
func (s *System) Config() Config { return s.cfg }

// ObserveTraffic records the aggregate block transfers of the interval that
// just completed, of duration intervalSec, updating the utilization that
// shapes next interval's latency.
func (s *System) ObserveTraffic(blocks uint64, intervalSec float64) {
	if intervalSec <= 0 {
		return
	}
	demandGBs := float64(blocks) * float64(s.cfg.BlockBytes) / intervalSec / 1e9
	s.utilization = demandGBs / s.cfg.BandwidthGBs
}

// Utilization returns the most recently observed demand/capacity ratio
// (may exceed 1 when the channel is oversubscribed).
func (s *System) Utilization() float64 { return s.utilization }

// LatencyNs returns the effective access latency for the current interval:
// the unloaded latency inflated by an M/M/1-style queueing factor
// 1/(1-ρ), clamped to MaxQueueFactor.
func (s *System) LatencyNs() float64 {
	rho := s.utilization
	factor := s.cfg.MaxQueueFactor
	if rho < 1 {
		f := 1 / (1 - rho)
		if f < factor {
			factor = f
		}
	}
	return s.cfg.BaseLatencyNs * factor
}

// LatencyCycles converts the effective latency into cycles at frequency
// freqMHz — the conversion that makes memory stalls relatively cheaper at
// low frequency.
func (s *System) LatencyCycles(freqMHz float64) float64 {
	return s.LatencyNs() * freqMHz / 1000
}
