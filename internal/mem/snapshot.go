package mem

import "github.com/cpm-sim/cpm/internal/snapshot"

// Snapshot appends the memory system's dynamic state: the utilization of
// the last observed interval (the delayed cross-island coupling input).
func (s *System) Snapshot(e *snapshot.Encoder) {
	e.Tag(snapshot.TagMem)
	e.F64(s.utilization)
}

// Restore reads state written by Snapshot.
func (s *System) Restore(d *snapshot.Decoder) error {
	d.Tag(snapshot.TagMem)
	s.utilization = d.F64()
	return d.Err()
}
