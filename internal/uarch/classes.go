package uarch

import (
	"fmt"

	"github.com/cpm-sim/cpm/internal/power"
)

// OoOParams returns the pipeline parameters of the big out-of-order core
// class — the Table I machine, under its heterogeneous-chip name.
func OoOParams() Params { return TableIParams() }

// LittleIOParams returns the little in-order core class: scalar issue and
// commit behind a 2-wide fetch, with a window an order of magnitude
// smaller than the big core's. Its issue-limited CPI floor is 1 (vs the
// big core's 0.5), so a little island delivers roughly half the
// throughput per MHz — the other side of the BIPS/W trade-off its ~0.31×
// power model opens up.
func LittleIOParams() Params {
	return Params{FetchWidth: 2, IssueWidth: 1, CommitWidth: 1, ROBSize: 32, IQSize: 8}
}

// ParamsForClass maps a core class to its pipeline preset.
func ParamsForClass(c power.CoreClass) (Params, error) {
	switch c {
	case power.ClassOoO:
		return OoOParams(), nil
	case power.ClassLittleIO:
		return LittleIOParams(), nil
	default:
		return Params{}, fmt.Errorf("uarch: unknown core class %d", uint8(c))
	}
}
