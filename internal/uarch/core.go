// Package uarch implements the out-of-order core model of the CMP simulator
// using interval analysis: instead of simulating every pipeline stage cycle
// by cycle (the role GEMS/OPAL played in the paper's setup), each control
// interval is summarized by an analytic CPI decomposition
//
//	CPI = CPI_base(ILP) + CPI_L2-stalls + CPI_memory-stalls(f)
//
// driven by *measured* miss rates from a real cache hierarchy fed with
// sampled synthetic address streams. Because DRAM latency is fixed in
// nanoseconds while on-chip latencies are fixed in cycles, the model
// reproduces the property the power controllers exploit: CPU-bound
// applications speed up linearly with frequency while memory-bound ones
// barely respond — at a tiny fraction of the cost of cycle-accurate
// simulation.
package uarch

import (
	"errors"

	"github.com/cpm-sim/cpm/internal/cache"
	"github.com/cpm-sim/cpm/internal/mem"
	"github.com/cpm-sim/cpm/internal/power"
	"github.com/cpm-sim/cpm/internal/workload"
)

// Params are the pipeline parameters of Table I.
type Params struct {
	FetchWidth  int
	IssueWidth  int
	CommitWidth int
	ROBSize     int
	IQSize      int
}

// TableIParams returns the paper's core configuration: 4-wide fetch, 2-wide
// issue and commit (Table I), with conventional ROB/IQ sizes for such a
// machine.
func TableIParams() Params {
	return Params{FetchWidth: 4, IssueWidth: 2, CommitWidth: 2, ROBSize: 128, IQSize: 32}
}

// Validate checks the pipeline parameters.
func (p Params) Validate() error {
	if p.FetchWidth <= 0 || p.IssueWidth <= 0 || p.CommitWidth <= 0 {
		return errors.New("uarch: non-positive pipeline width")
	}
	if p.ROBSize <= 0 || p.IQSize <= 0 {
		return errors.New("uarch: non-positive window size")
	}
	return nil
}

// Config bundles core parameters with the sampling densities of the
// interval model.
type Config struct {
	Params Params
	// DataSampleRefs is the number of data references pushed through the
	// cache hierarchy per interval to estimate miss rates.
	DataSampleRefs int
	// FetchSampleRefs is the number of instruction-fetch references sampled
	// per interval.
	FetchSampleRefs int
	// NominalMaxMHz is the chip's nominal top frequency, the denominator of
	// the normalized-throughput utilization metric.
	NominalMaxMHz float64
}

// DefaultConfig returns the Table I configuration with the default sampling
// density.
func DefaultConfig() Config {
	return Config{
		Params:          TableIParams(),
		DataSampleRefs:  2048,
		FetchSampleRefs: 512,
		NominalMaxMHz:   2000,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.DataSampleRefs <= 0 || c.FetchSampleRefs <= 0 {
		return errors.New("uarch: non-positive sample density")
	}
	if c.NominalMaxMHz <= 0 {
		return errors.New("uarch: non-positive nominal frequency")
	}
	return nil
}

// IntervalStats summarises one control interval of one core.
type IntervalStats struct {
	// Instructions executed during the interval.
	Instructions float64
	// CPI is the effective cycles per instruction.
	CPI float64
	// BIPS is billions of instructions per second over the interval.
	BIPS float64
	// BusyFrac is the fraction of cycles the core was not stalled on the
	// memory system; it drives switching activity in the power model.
	BusyFrac float64
	// Utilization is the normalized-throughput utilization reported by the
	// performance counters: instructions retired relative to the core's
	// issue-limited maximum at the nominal top frequency. This is the
	// observable the PIC's transducer converts to power (§II-D).
	Utilization float64
	// Activity is the per-unit activity profile for the power model.
	Activity power.ActivityProfile
	// MemBlocks is the estimated number of cache-block transfers to memory
	// during the interval (full-interval estimate, not the sample count).
	MemBlocks uint64
	// Phase is the workload phase the interval ran in.
	Phase workload.Phase
}

// Core is one simulated core executing one application thread.
// It is not safe for concurrent use; in the parallel simulator each core is
// stepped only by its island's goroutine.
type Core struct {
	id      int
	cfg     Config
	prof    workload.Profile
	phases  *workload.PhaseGen
	streams *workload.StreamGen
	hier    *cache.Hierarchy
	memsys  *mem.System

	dataBuf  []uint64
	fetchBuf []uint64

	// extraMemNs, when non-nil, supplies additional nanoseconds added to
	// every memory access — the NoC round trip from this core's tile to
	// the nearest memory controller. Evaluated once per interval (the
	// interconnect state is previous-interval, like the memory system's).
	extraMemNs func() float64
	// recorder, when non-nil, receives every interval's TraceRecord.
	recorder func(TraceRecord)

	totalInstructions float64
}

// NewCore builds a core. The hierarchy and memory system are owned by the
// caller (the L2 may be shared between cores of an island).
func NewCore(id int, seed uint64, cfg Config, prof workload.Profile, hier *cache.Hierarchy, memsys *mem.System) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if hier == nil || memsys == nil {
		return nil, errors.New("uarch: core needs a cache hierarchy and memory system")
	}
	streams, err := workload.NewStreamGen(seed, id, prof)
	if err != nil {
		return nil, err
	}
	return &Core{
		id:      id,
		cfg:     cfg,
		prof:    prof,
		phases:  workload.NewPhaseGen(seed, prof),
		streams: streams,
		hier:    hier,
		memsys:  memsys,
	}, nil
}

// ID returns the core's identifier.
func (c *Core) ID() int { return c.id }

// SetExtraMemLatency installs a per-interval source of additional memory
// latency in nanoseconds (e.g. the on-chip interconnect's round trip).
func (c *Core) SetExtraMemLatency(f func() float64) { c.extraMemNs = f }

// SetRecorder installs a sink receiving every interval's TraceRecord, for
// trace capture; pass nil to stop recording.
func (c *Core) SetRecorder(f func(TraceRecord)) { c.recorder = f }

// Profile returns the application profile the core runs.
func (c *Core) Profile() workload.Profile { return c.prof }

// TotalInstructions returns the cumulative instruction count.
func (c *Core) TotalInstructions() float64 { return c.totalInstructions }

// CacheStats returns the cumulative access counters of the core's cache
// hierarchy. For a shared L2 the third result is the shared cache's
// counters, common to every core of the island; the caller is responsible
// for not double-counting them.
func (c *Core) CacheStats() (l1i, l1d, l2 cache.Stats) {
	return c.hier.L1I.Stats(), c.hier.L1D.Stats(), c.hier.L2.Stats()
}

// TraceRecord captures the frequency-independent workload state of one
// core-interval: everything RunInterval derived from the phase machine and
// the sampled cache simulation, but nothing that depends on the operating
// point. A recorded trace can therefore be replayed under a *different*
// DVFS trajectory — the same separation interval-trace simulators exploit —
// skipping phase generation and cache simulation entirely.
type TraceRecord struct {
	// BaseCPI is the ILP-limited CPI after phase scaling and the
	// issue-width floor.
	BaseCPI float64
	// MemRefs is the phase-scaled data references per instruction.
	MemRefs float64
	// PDataL2 and PDataMem are the measured fractions of data references
	// served by the L2 and by memory.
	PDataL2, PDataMem float64
	// PFetchL2 and PFetchMem are the corresponding fetch-side fractions.
	PFetchL2, PFetchMem float64
	// ActMult is the phase's activity multiplier.
	ActMult float64
	// Phase is kept for completeness/debugging.
	Phase workload.Phase
}

// RunInterval executes one control interval of length intervalSec at
// frequency freqMHz. overheadFrac is the fraction of the interval lost to a
// DVFS transition (0 when the operating point did not change).
//
// RunInterval is SampleInterval followed by FinishInterval; callers that
// need the two halves separately (trace capture, or amortizing sampling
// across chips sharing a workload — see internal/farm) call them directly.
func (c *Core) RunInterval(freqMHz, intervalSec, overheadFrac float64) IntervalStats {
	rec := c.SampleInterval()
	if c.recorder != nil {
		c.recorder(rec)
	}
	return c.FinishInterval(rec, freqMHz, intervalSec, overheadFrac)
}

// FinishInterval evaluates the frequency-dependent half of the interval
// model: it turns a TraceRecord (from this core's SampleInterval, or an
// equivalent core's — the record is frequency-independent) into
// IntervalStats at the requested operating point, and accumulates the
// instruction count.
func (c *Core) FinishInterval(rec TraceRecord, freqMHz, intervalSec, overheadFrac float64) IntervalStats {
	memNs := c.memsys.LatencyNs()
	if c.extraMemNs != nil {
		memNs += c.extraMemNs()
	}
	stats := computeInterval(rec, c.cfg, c.prof, float64(l2LatencyCycles(c.hier)), memNs,
		freqMHz, intervalSec, overheadFrac)
	c.totalInstructions += stats.Instructions
	return stats
}

// SampleInterval advances the phase machine and pushes the sampled address
// streams through the caches, yielding the interval's TraceRecord — the
// frequency-independent half of the interval model. Every call advances
// workload state; pair each call with exactly one FinishInterval (on this
// core or on compute-only cores sharing the record) to keep instruction
// accounting meaningful.
func (c *Core) SampleInterval() TraceRecord {
	ph := c.phases.Next()
	c.dataBuf = c.streams.DataAddrs(c.cfg.DataSampleRefs, ph, c.dataBuf)
	var dL2, dMem int
	for _, a := range c.dataBuf {
		switch c.hier.Data(a) {
		case cache.HitL2:
			dL2++
		case cache.HitMemory:
			dMem++
		}
	}
	c.fetchBuf = c.streams.FetchAddrs(c.cfg.FetchSampleRefs, c.fetchBuf)
	var fL2, fMem int
	for _, a := range c.fetchBuf {
		switch c.hier.Fetch(a) {
		case cache.HitL2:
			fL2++
		case cache.HitMemory:
			fMem++
		}
	}
	dn := float64(c.cfg.DataSampleRefs)
	fn := float64(c.cfg.FetchSampleRefs)

	baseCPI := c.prof.BaseCPI * ph.CPIMult
	if floor := 1 / float64(c.cfg.Params.IssueWidth); baseCPI < floor {
		baseCPI = floor
	}
	return TraceRecord{
		BaseCPI:   baseCPI,
		MemRefs:   clamp01(c.prof.MemRefFraction * ph.MemMult),
		PDataL2:   float64(dL2) / dn,
		PDataMem:  float64(dMem) / dn,
		PFetchL2:  float64(fL2) / fn,
		PFetchMem: float64(fMem) / fn,
		ActMult:   ph.ActMult,
		Phase:     ph,
	}
}

// computeInterval turns a TraceRecord into IntervalStats at a given
// operating point — the frequency-dependent half of the interval model.
func computeInterval(rec TraceRecord, cfg Config, prof workload.Profile,
	l2Lat, memNs, freqMHz, intervalSec, overheadFrac float64) IntervalStats {
	memLat := memNs * freqMHz / 1000

	// One instruction-cache block (64 B, ~16 instructions) is fetched per
	// block's worth of sequential instructions; only these block fetches
	// can miss.
	const instrPerFetchBlock = 16.0
	fetchPerInstr := 1 / instrPerFetchBlock
	stallCPI := rec.MemRefs*(rec.PDataL2*l2Lat+rec.PDataMem*memLat/prof.MLP) +
		fetchPerInstr*(rec.PFetchL2*l2Lat+rec.PFetchMem*memLat)
	cpi := rec.BaseCPI + stallCPI

	if overheadFrac < 0 {
		overheadFrac = 0
	}
	if overheadFrac > 1 {
		overheadFrac = 1
	}
	cycles := freqMHz * 1e6 * intervalSec * (1 - overheadFrac)
	instructions := cycles / cpi

	busy := rec.BaseCPI / cpi
	// Utilization as hardware activity counters report it: active-pipeline
	// cycles per second relative to the nominal maximum cycle rate. A core
	// stalled on memory is not halted — its front end keeps speculating and
	// its MSHRs stay busy — so stall cycles register roughly half-active,
	// consistent with the power model's structural baselines. The resulting
	// metric is near-linear in frequency for both CPU- and memory-bound
	// code, which is what makes the Figure 6 utilization→power relation
	// linear across the whole suite.
	active := busy + 0.5*(1-busy)
	util := clamp01(active * freqMHz * (1 - overheadFrac) / cfg.NominalMaxMHz)

	stats := IntervalStats{
		Instructions: instructions,
		CPI:          cpi,
		BIPS:         instructions / intervalSec / 1e9,
		BusyFrac:     busy,
		Utilization:  util,
		Phase:        rec.Phase,
		Activity: power.ActivityProfile{
			Utilization:    clamp01(busy * rec.ActMult * prof.ActivityScale),
			FPFraction:     prof.FPFraction,
			MemRefFraction: rec.MemRefs,
			L2AccessFactor: clamp01(rec.MemRefs * (rec.PDataL2 + rec.PDataMem) * 4),
		},
	}
	// Full-interval memory traffic estimate from the sampled miss rates.
	blocks := instructions * (rec.MemRefs*rec.PDataMem + fetchPerInstr*rec.PFetchMem)
	if blocks > 0 {
		stats.MemBlocks = uint64(blocks)
	}
	return stats
}

func l2LatencyCycles(h *cache.Hierarchy) int {
	// The hierarchy's L2 may be a single cache or a banked shared cache;
	// both are built from the Table I per-core configuration.
	type latency interface{ Config() cache.Config }
	if c, ok := h.L2.(latency); ok {
		return c.Config().LatencyCycles
	}
	return cache.TableIL2PerCore().LatencyCycles
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
