package uarch

import (
	"math"
	"testing"

	"github.com/cpm-sim/cpm/internal/cache"
	"github.com/cpm-sim/cpm/internal/mem"
	"github.com/cpm-sim/cpm/internal/workload"
)

func sampleTrace(t *testing.T, n int) []TraceRecord {
	t.Helper()
	c := newCore(t, 0, 42, "bschls")
	var out []TraceRecord
	c.SetRecorder(func(r TraceRecord) { out = append(out, r) })
	for k := 0; k < n; k++ {
		c.RunInterval(2000, 0.0025, 0)
	}
	if len(out) != n {
		t.Fatalf("recorded %d records, want %d", len(out), n)
	}
	return out
}

func TestNewReplayCoreValidation(t *testing.T) {
	m, _ := mem.New(mem.TableI())
	prof := workload.MustByName("bschls")
	trace := sampleTrace(t, 3)
	if _, err := NewReplayCore(0, DefaultConfig(), prof, nil, 10, m); err == nil {
		t.Error("empty trace should be rejected")
	}
	if _, err := NewReplayCore(0, DefaultConfig(), prof, trace, -1, m); err == nil {
		t.Error("negative latency should be rejected")
	}
	if _, err := NewReplayCore(0, DefaultConfig(), prof, trace, 10, nil); err == nil {
		t.Error("nil memory system should be rejected")
	}
	bad := DefaultConfig()
	bad.NominalMaxMHz = 0
	if _, err := NewReplayCore(0, bad, prof, trace, 10, m); err == nil {
		t.Error("invalid config should be rejected")
	}
}

// A replay core fed the records of a live core under the same conditions
// produces identical interval statistics.
func TestReplayCoreMatchesLiveCore(t *testing.T) {
	live := newCore(t, 0, 7, "fsim")
	var recs []TraceRecord
	live.SetRecorder(func(r TraceRecord) { recs = append(recs, r) })
	var liveStats []IntervalStats
	for k := 0; k < 20; k++ {
		liveStats = append(liveStats, live.RunInterval(1400, 0.0025, 0))
	}

	m, _ := mem.New(mem.TableI())
	rc, err := NewReplayCore(0, DefaultConfig(), workload.MustByName("fsim"), recs,
		cache.TableIL2PerCore().LatencyCycles, m)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 20; k++ {
		got := rc.RunInterval(1400, 0.0025, 0)
		if math.Abs(got.Instructions-liveStats[k].Instructions) > 1e-6 ||
			math.Abs(got.Utilization-liveStats[k].Utilization) > 1e-12 {
			t.Fatalf("interval %d: replay %+v vs live %+v", k, got, liveStats[k])
		}
	}
	if rc.Len() != 20 || rc.ID() != 0 || rc.Profile().Name != "fsim" {
		t.Error("accessors wrong")
	}
	if math.Abs(rc.TotalInstructions()-live.TotalInstructions()) > 1e-3 {
		t.Error("cumulative counts diverged")
	}
}

// Replay honours extra memory latency (NoC) like a live core does.
func TestReplayCoreExtraLatency(t *testing.T) {
	recs := sampleTrace(t, 10)
	m, _ := mem.New(mem.TableI())
	mk := func(extra float64) float64 {
		rc, err := NewReplayCore(0, DefaultConfig(), workload.MustByName("bschls"), recs, 10, m)
		if err != nil {
			t.Fatal(err)
		}
		if extra > 0 {
			rc.SetExtraMemLatency(func() float64 { return extra })
		}
		var instr float64
		for k := 0; k < 10; k++ {
			instr += rc.RunInterval(2000, 0.0025, 0).Instructions
		}
		return instr
	}
	if fast, slow := mk(0), mk(500); slow >= fast {
		t.Errorf("added memory latency should reduce replayed throughput: %v vs %v", slow, fast)
	}
}
