package uarch

import (
	"errors"

	"github.com/cpm-sim/cpm/internal/mem"
	"github.com/cpm-sim/cpm/internal/workload"
)

// ComputeCore is the frequency-dependent half of a core with the sampling
// half factored out: it evaluates externally supplied TraceRecords at its
// own operating point, against its own memory system and interconnect
// state. It owns no phase machine, no address streams and no caches, so it
// is a few hundred bytes instead of a few hundred kilobytes — the member
// representation of a chip farm, where many chips sharing one workload
// (same seed, mix and cache configuration) draw records from a single
// shared sampler (see sim.Sampler / internal/farm).
//
// Because TraceRecords are frequency-independent, a ComputeCore fed the
// records a live Core would have produced computes bit-identical
// IntervalStats to that live core under any DVFS trajectory.
type ComputeCore struct {
	id     int
	cfg    Config
	prof   workload.Profile
	l2Lat  float64
	memsys *mem.System

	extraMemNs        func() float64
	totalInstructions float64
}

// NewComputeCore builds a compute-only core. l2LatencyCycles is the L2
// latency the records' miss fractions are charged at (the sampling
// hierarchy's, normally cache.TableIL2PerCore().LatencyCycles).
func NewComputeCore(id int, cfg Config, prof workload.Profile,
	l2LatencyCycles int, memsys *mem.System) (*ComputeCore, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if l2LatencyCycles < 0 {
		return nil, errors.New("uarch: negative L2 latency")
	}
	if memsys == nil {
		return nil, errors.New("uarch: compute core needs a memory system")
	}
	return &ComputeCore{
		id:     id,
		cfg:    cfg,
		prof:   prof,
		l2Lat:  float64(l2LatencyCycles),
		memsys: memsys,
	}, nil
}

// ID returns the core's identifier.
func (c *ComputeCore) ID() int { return c.id }

// Profile returns the application profile the core runs.
func (c *ComputeCore) Profile() workload.Profile { return c.prof }

// TotalInstructions returns the cumulative instruction count.
func (c *ComputeCore) TotalInstructions() float64 { return c.totalInstructions }

// SetExtraMemLatency mirrors Core.SetExtraMemLatency.
func (c *ComputeCore) SetExtraMemLatency(f func() float64) { c.extraMemNs = f }

// FinishInterval evaluates the supplied record at the given operating
// point, mirroring Core.FinishInterval operation for operation so the two
// produce bit-identical IntervalStats from the same record and memory
// state.
func (c *ComputeCore) FinishInterval(rec TraceRecord, freqMHz, intervalSec, overheadFrac float64) IntervalStats {
	memNs := c.memsys.LatencyNs()
	if c.extraMemNs != nil {
		memNs += c.extraMemNs()
	}
	stats := computeInterval(rec, c.cfg, c.prof, c.l2Lat, memNs,
		freqMHz, intervalSec, overheadFrac)
	c.totalInstructions += stats.Instructions
	return stats
}

// RunInterval panics: a ComputeCore has no workload generator of its own
// and must be driven through FinishInterval with an external record (the
// engine does this whenever the chip was built with sim.NewWithRecords).
func (c *ComputeCore) RunInterval(freqMHz, intervalSec, overheadFrac float64) IntervalStats {
	panic("uarch: ComputeCore.RunInterval: compute-only cores need external records")
}
