package uarch

import "github.com/cpm-sim/cpm/internal/snapshot"

// Snapshot appends the live core's dynamic state: phase and address
// generator streams, cumulative instruction count, and the cache
// hierarchy. includeL2 mirrors cache.Hierarchy.Snapshot — false when the
// L2 is shared per island and captured once at the island level. The
// address scratch buffers are reused per interval and never read before
// being overwritten, so they carry no state.
func (c *Core) Snapshot(e *snapshot.Encoder, includeL2 bool) {
	e.Tag(snapshot.TagCore)
	c.phases.Snapshot(e)
	c.streams.Snapshot(e)
	e.F64(c.totalInstructions)
	c.hier.Snapshot(e, includeL2)
}

// Restore reads state written by Snapshot.
func (c *Core) Restore(d *snapshot.Decoder, includeL2 bool) error {
	d.Tag(snapshot.TagCore)
	if err := c.phases.Restore(d); err != nil {
		return err
	}
	if err := c.streams.Restore(d); err != nil {
		return err
	}
	c.totalInstructions = d.F64()
	if err := d.Err(); err != nil {
		return err
	}
	return c.hier.Restore(d, includeL2)
}

// Snapshot appends the compute core's dynamic state — only the cumulative
// instruction count; the workload state lives in the shared sampler.
func (c *ComputeCore) Snapshot(e *snapshot.Encoder) {
	e.Tag(snapshot.TagComputeCore)
	e.F64(c.totalInstructions)
}

// Restore reads state written by Snapshot.
func (c *ComputeCore) Restore(d *snapshot.Decoder) error {
	d.Tag(snapshot.TagComputeCore)
	c.totalInstructions = d.F64()
	return d.Err()
}

// Snapshot appends the replay core's dynamic state: the trace cursor and
// cumulative instruction count.
func (c *ReplayCore) Snapshot(e *snapshot.Encoder) {
	e.Tag(snapshot.TagReplayCore)
	e.Int(c.pos)
	e.F64(c.totalInstructions)
}

// Restore reads state written by Snapshot, validating the cursor against
// the trace length.
func (c *ReplayCore) Restore(d *snapshot.Decoder) error {
	d.Tag(snapshot.TagReplayCore)
	pos := d.Int()
	total := d.F64()
	if err := d.Err(); err != nil {
		return err
	}
	if pos < 0 || (len(c.trace) > 0 && pos >= len(c.trace)) {
		return snapshot.ShapeErrorf("replay cursor %d outside trace of %d records", pos, len(c.trace))
	}
	c.pos = pos
	c.totalInstructions = total
	return nil
}
