package uarch

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"github.com/cpm-sim/cpm/internal/mem"
	"github.com/cpm-sim/cpm/internal/workload"
)

// ReplayCore re-executes a recorded interval trace instead of generating
// workload behaviour: each RunInterval consumes the next TraceRecord (wrapping
// around at the end) and evaluates the frequency-dependent half of the
// interval model at the requested operating point. Because TraceRecords are
// frequency-independent, a trace captured under one DVFS trajectory can be
// replayed under any other — e.g. to compare controllers on *identical*
// workload behaviour, or to rerun experiments ~an order of magnitude faster
// by skipping phase generation and cache simulation.
type ReplayCore struct {
	id     int
	cfg    Config
	prof   workload.Profile
	trace  []TraceRecord
	pos    int
	l2Lat  float64
	memsys *mem.System

	extraMemNs        func() float64
	totalInstructions float64
}

// NewReplayCore builds a core replaying trace. l2LatencyCycles is the L2
// latency the trace's miss fractions are charged at (the recording
// hierarchy's, normally cache.TableIL2PerCore().LatencyCycles).
func NewReplayCore(id int, cfg Config, prof workload.Profile, trace []TraceRecord,
	l2LatencyCycles int, memsys *mem.System) (*ReplayCore, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if len(trace) == 0 {
		return nil, errors.New("uarch: empty trace")
	}
	if l2LatencyCycles < 0 {
		return nil, errors.New("uarch: negative L2 latency")
	}
	if memsys == nil {
		return nil, errors.New("uarch: replay core needs a memory system")
	}
	return &ReplayCore{
		id:     id,
		cfg:    cfg,
		prof:   prof,
		trace:  trace,
		l2Lat:  float64(l2LatencyCycles),
		memsys: memsys,
	}, nil
}

// ID returns the core's identifier.
func (c *ReplayCore) ID() int { return c.id }

// Profile returns the application profile the trace was recorded from.
func (c *ReplayCore) Profile() workload.Profile { return c.prof }

// TotalInstructions returns the cumulative instruction count.
func (c *ReplayCore) TotalInstructions() float64 { return c.totalInstructions }

// SetExtraMemLatency mirrors Core.SetExtraMemLatency.
func (c *ReplayCore) SetExtraMemLatency(f func() float64) { c.extraMemNs = f }

// Len returns the trace length in intervals.
func (c *ReplayCore) Len() int { return len(c.trace) }

// RunInterval consumes the next trace record at the given operating point.
func (c *ReplayCore) RunInterval(freqMHz, intervalSec, overheadFrac float64) IntervalStats {
	rec := c.trace[c.pos]
	c.pos = (c.pos + 1) % len(c.trace)
	memNs := c.memsys.LatencyNs()
	if c.extraMemNs != nil {
		memNs += c.extraMemNs()
	}
	stats := computeInterval(rec, c.cfg, c.prof, c.l2Lat, memNs,
		freqMHz, intervalSec, overheadFrac)
	c.totalInstructions += stats.Instructions
	return stats
}

// TraceSet is a saved collection of per-core traces plus the profile names
// needed to rebuild replay cores.
type TraceSet struct {
	// Benchmarks[coreID] names the profile the core ran.
	Benchmarks map[int]string
	// Records[coreID] is the interval trace.
	Records map[int][]TraceRecord
}

// SaveTraces gob-encodes a TraceSet.
func SaveTraces(w io.Writer, set TraceSet) error {
	if len(set.Records) == 0 {
		return errors.New("uarch: empty trace set")
	}
	return gob.NewEncoder(w).Encode(set)
}

// LoadTraces decodes a TraceSet and validates its shape.
func LoadTraces(r io.Reader) (TraceSet, error) {
	var set TraceSet
	if err := gob.NewDecoder(r).Decode(&set); err != nil {
		return TraceSet{}, fmt.Errorf("uarch: decoding traces: %w", err)
	}
	for id, recs := range set.Records {
		if len(recs) == 0 {
			return TraceSet{}, fmt.Errorf("uarch: core %d has an empty trace", id)
		}
		if _, ok := set.Benchmarks[id]; !ok {
			return TraceSet{}, fmt.Errorf("uarch: core %d has no benchmark name", id)
		}
		if _, err := workload.ByName(set.Benchmarks[id]); err != nil {
			return TraceSet{}, err
		}
	}
	return set, nil
}
