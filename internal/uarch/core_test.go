package uarch

import (
	"math"
	"testing"

	"github.com/cpm-sim/cpm/internal/cache"
	"github.com/cpm-sim/cpm/internal/mem"
	"github.com/cpm-sim/cpm/internal/workload"
)

func newCore(t *testing.T, id int, seed uint64, bench string) *Core {
	t.Helper()
	l1i, err := cache.New(cache.TableIL1())
	if err != nil {
		t.Fatal(err)
	}
	l1d, err := cache.New(cache.TableIL1())
	if err != nil {
		t.Fatal(err)
	}
	l2, err := cache.New(cache.TableIL2PerCore())
	if err != nil {
		t.Fatal(err)
	}
	h, err := cache.NewHierarchy(l1i, l1d, l2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mem.New(mem.TableI())
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCore(id, seed, DefaultConfig(), workload.MustByName(bench), h, m)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// run executes n warm-up intervals then returns the mean stats of the next
// n intervals.
func run(c *Core, freqMHz float64, n int) IntervalStats {
	const dt = 0.0025
	for i := 0; i < n; i++ {
		c.RunInterval(freqMHz, dt, 0)
	}
	var acc IntervalStats
	for i := 0; i < n; i++ {
		s := c.RunInterval(freqMHz, dt, 0)
		acc.Instructions += s.Instructions
		acc.CPI += s.CPI
		acc.BIPS += s.BIPS
		acc.BusyFrac += s.BusyFrac
		acc.Utilization += s.Utilization
	}
	k := float64(n)
	acc.CPI /= k
	acc.BIPS /= k
	acc.BusyFrac /= k
	acc.Utilization /= k
	return acc
}

func TestTableIParamsValid(t *testing.T) {
	if err := TableIParams().Validate(); err != nil {
		t.Fatal(err)
	}
	p := TableIParams()
	if p.FetchWidth != 4 || p.IssueWidth != 2 || p.CommitWidth != 2 {
		t.Errorf("Table I widths = %+v, want 4/2/2", p)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.DataSampleRefs = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero sample density should be rejected")
	}
	bad = DefaultConfig()
	bad.NominalMaxMHz = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero nominal frequency should be rejected")
	}
	bad = DefaultConfig()
	bad.Params.IssueWidth = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero issue width should be rejected")
	}
}

func TestNewCoreValidation(t *testing.T) {
	if _, err := NewCore(0, 1, DefaultConfig(), workload.MustByName("bschls"), nil, nil); err == nil {
		t.Error("nil hierarchy should be rejected")
	}
	badProf := workload.MustByName("bschls")
	badProf.BaseCPI = -1
	l1i, _ := cache.New(cache.TableIL1())
	l1d, _ := cache.New(cache.TableIL1())
	l2, _ := cache.New(cache.TableIL2PerCore())
	h, _ := cache.NewHierarchy(l1i, l1d, l2)
	m, _ := mem.New(mem.TableI())
	if _, err := NewCore(0, 1, DefaultConfig(), badProf, h, m); err == nil {
		t.Error("invalid profile should be rejected")
	}
}

// CPU-bound applications must speed up nearly linearly with frequency;
// memory-bound applications must not. This is the fundamental property the
// whole power-management study rests on.
func TestFrequencyScalingByClass(t *testing.T) {
	cases := []struct {
		bench   string
		minGain float64 // required BIPS(2000)/BIPS(600)
		maxGain float64
	}{
		{"bschls", 2.6, 3.6}, // CPU bound: near the 3.33 frequency ratio
		{"x264", 2.6, 3.6},
		{"sclust", 1.0, 2.2}, // memory bound: well below it
		{"canneal", 1.0, 2.0},
	}
	for _, c := range cases {
		slow := run(newCore(t, 0, 42, c.bench), 600, 40)
		fast := run(newCore(t, 0, 42, c.bench), 2000, 40)
		gain := fast.BIPS / slow.BIPS
		if gain < c.minGain || gain > c.maxGain {
			t.Errorf("%s: BIPS gain 600→2000 MHz = %.2f, want in [%.1f, %.1f]",
				c.bench, gain, c.minGain, c.maxGain)
		}
	}
}

func TestMemoryBoundHasHigherCPI(t *testing.T) {
	cpu := run(newCore(t, 0, 7, "bschls"), 2000, 40)
	memb := run(newCore(t, 0, 7, "canneal"), 2000, 40)
	if memb.CPI < 2*cpu.CPI {
		t.Errorf("canneal CPI (%.2f) should dwarf blackscholes CPI (%.2f)", memb.CPI, cpu.CPI)
	}
	if cpu.CPI < 0.5 || cpu.CPI > 3 {
		t.Errorf("blackscholes CPI = %.2f, outside plausible range", cpu.CPI)
	}
	if memb.CPI < 3 || memb.CPI > 40 {
		t.Errorf("canneal CPI = %.2f, outside plausible range", memb.CPI)
	}
}

func TestUtilizationTracksFrequencyForCPUBound(t *testing.T) {
	slow := run(newCore(t, 0, 3, "btrack"), 600, 40)
	fast := run(newCore(t, 0, 3, "btrack"), 2000, 40)
	if fast.Utilization <= slow.Utilization {
		t.Error("CPU-bound utilization should grow with frequency")
	}
	ratio := fast.Utilization / slow.Utilization
	if ratio < 2.0 || ratio > 4.0 {
		t.Errorf("utilization ratio = %.2f, want near the frequency ratio 3.33", ratio)
	}
}

func TestDVFSOverheadReducesWork(t *testing.T) {
	a := newCore(t, 0, 11, "bschls")
	b := newCore(t, 0, 11, "bschls")
	sa := a.RunInterval(2000, 0.0025, 0)
	sb := b.RunInterval(2000, 0.0025, 0.005)
	if sb.Instructions >= sa.Instructions {
		t.Error("transition overhead should reduce instructions executed")
	}
	lost := 1 - sb.Instructions/sa.Instructions
	if math.Abs(lost-0.005) > 1e-9 {
		t.Errorf("lost fraction = %v, want 0.005", lost)
	}
	// Overhead is clamped.
	sc := b.RunInterval(2000, 0.0025, 5)
	if sc.Instructions != 0 {
		t.Error("full-interval overhead should yield zero instructions")
	}
}

func TestDeterministicAcrossInstances(t *testing.T) {
	a := newCore(t, 2, 99, "fsim")
	b := newCore(t, 2, 99, "fsim")
	for i := 0; i < 20; i++ {
		sa := a.RunInterval(1400, 0.0025, 0)
		sb := b.RunInterval(1400, 0.0025, 0)
		if sa != sb {
			t.Fatalf("interval %d diverged: %+v vs %+v", i, sa, sb)
		}
	}
	if a.TotalInstructions() != b.TotalInstructions() {
		t.Error("cumulative counts diverged")
	}
}

func TestStatsAreFiniteAndBounded(t *testing.T) {
	for _, bench := range workload.Names() {
		c := newCore(t, 1, 5, bench)
		for i := 0; i < 30; i++ {
			s := c.RunInterval(1000, 0.0025, 0)
			if math.IsNaN(s.CPI) || math.IsInf(s.CPI, 0) || s.CPI <= 0 {
				t.Fatalf("%s: bad CPI %v", bench, s.CPI)
			}
			if s.BusyFrac < 0 || s.BusyFrac > 1 {
				t.Fatalf("%s: BusyFrac %v out of range", bench, s.BusyFrac)
			}
			if s.Utilization < 0 || s.Utilization > 1 {
				t.Fatalf("%s: Utilization %v out of range", bench, s.Utilization)
			}
			if s.Instructions < 0 {
				t.Fatalf("%s: negative instructions", bench)
			}
			au := s.Activity
			for _, v := range []float64{au.Utilization, au.FPFraction, au.MemRefFraction, au.L2AccessFactor} {
				if v < 0 || v > 1 {
					t.Fatalf("%s: activity component %v out of range", bench, v)
				}
			}
		}
	}
}

func TestMemoryBoundGeneratesTraffic(t *testing.T) {
	// Warm both cores past the cold-start sweep of their working sets
	// before measuring steady-state traffic.
	count := func(bench string) uint64 {
		c := newCore(t, 0, 17, bench)
		for i := 0; i < 60; i++ {
			c.RunInterval(2000, 0.0025, 0)
		}
		var blocks uint64
		for i := 0; i < 20; i++ {
			blocks += c.RunInterval(2000, 0.0025, 0).MemBlocks
		}
		return blocks
	}
	memBlocks := count("sclust")
	cpuBlocks := count("bschls")
	if memBlocks == 0 {
		t.Error("memory-bound benchmark produced no memory traffic")
	}
	if cpuBlocks*4 > memBlocks {
		t.Errorf("CPU-bound steady-state traffic (%d) should be far below memory-bound traffic (%d)", cpuBlocks, memBlocks)
	}
}

func TestSharedL2CouplesCores(t *testing.T) {
	// Two memory-bound cores sharing one L2 slice evict each other's data;
	// each should see more memory traffic than when running alone.
	mkShared := func() (a, b *Core) {
		shared, err := cache.NewBanked(cache.TableIL2PerCore(), 2)
		if err != nil {
			t.Fatal(err)
		}
		msys, _ := mem.New(mem.TableI())
		for i := 0; i < 2; i++ {
			l1i, _ := cache.New(cache.TableIL1())
			l1d, _ := cache.New(cache.TableIL1())
			h, _ := cache.NewHierarchy(l1i, l1d, shared)
			c, err := NewCore(i, 55, DefaultConfig(), workload.MustByName("fsim"), h, msys)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				a = c
			} else {
				b = c
			}
		}
		return a, b
	}
	a, b := mkShared()
	var sharedCPI float64
	for i := 0; i < 30; i++ {
		sharedCPI += a.RunInterval(2000, 0.0025, 0).CPI
		b.RunInterval(2000, 0.0025, 0)
	}
	solo := run(newCore(t, 0, 55, "fsim"), 2000, 15)
	if sharedCPI/30 < solo.CPI*0.95 {
		t.Errorf("shared-L2 CPI (%.2f) should not beat solo CPI (%.2f)", sharedCPI/30, solo.CPI)
	}
}
