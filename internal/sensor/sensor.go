// Package sensor implements the measurement side of the PIC feedback loop:
// the utilization→power transducer of §II-D and the system-identification
// fits that calibrate it.
//
// Island power is not directly measurable at run time (the paper's premise),
// so the controller observes processor utilization from performance counters
// and converts it through a per-island linear model P = k₀·U + k₁ fitted
// offline — the regression of Figure 6. The same package fits the plant gain
// a of the difference model P(t+1) = P(t) + a·d(t) (Equation 8), the single
// parameter the PID design depends on.
package sensor

import (
	"errors"

	"github.com/cpm-sim/cpm/internal/stats"
)

// Transducer converts measured utilization into estimated island power as a
// fraction of the island's maximum power.
type Transducer struct {
	// K0 is the slope and K1 the intercept of the linear model.
	K0, K1 float64
}

// PowerFrac estimates island power (fraction of island max) from mean
// utilization u, clamped to [0, 1].
func (t Transducer) PowerFrac(u float64) float64 {
	p := t.K0*u + t.K1
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// FitTransducer fits the linear utilization→power model from paired
// observations (utilization, power fraction) and returns the transducer with
// the fit's R². The paper reports an average R² of 0.96 across PARSEC
// (Figure 6); callers should treat a low R² as a calibration failure.
func FitTransducer(utils, powerFracs []float64) (Transducer, float64, error) {
	fit, err := stats.LinReg(utils, powerFracs)
	if err != nil {
		return Transducer{}, 0, err
	}
	return Transducer{K0: fit.Slope, K1: fit.Intercept}, fit.R2, nil
}

// FitPlantGain fits the system gain a of Equation (8) from per-interval
// observations: powerDeltas[k] = P(k+1) − P(k) against freqDeltas[k] =
// f_norm(k+1) − f_norm(k), by least squares through the origin
// (the model has no intercept). Interval pairs with no frequency change
// carry no information about a and are skipped.
func FitPlantGain(powerDeltas, freqDeltas []float64) (float64, error) {
	if len(powerDeltas) != len(freqDeltas) {
		return 0, errors.New("sensor: mismatched sample lengths")
	}
	var num, den float64
	for i := range powerDeltas {
		if freqDeltas[i] == 0 {
			continue
		}
		num += powerDeltas[i] * freqDeltas[i]
		den += freqDeltas[i] * freqDeltas[i]
	}
	if den == 0 {
		return 0, errors.New("sensor: no frequency changes in sample")
	}
	return num / den, nil
}

// PredictSeries applies the difference model P(t+1) = P(t) + a·d(t) forward
// from initial power p0 over the frequency-delta sequence, returning the
// predicted power series (length len(freqDeltas)+1). This regenerates the
// model curve of Figure 5 for comparison against measured power.
func PredictSeries(p0, a float64, freqDeltas []float64) []float64 {
	out := make([]float64, len(freqDeltas)+1)
	out[0] = p0
	for i, d := range freqDeltas {
		out[i+1] = out[i] + a*d
	}
	return out
}

// PredictOneStep applies the difference model one step ahead from each
// *measured* power sample: pred[k+1] = actual[k] + a·d(k), with
// pred[0] = actual[0]. This is the standard system-identification
// validation (and how Figure 5 overlays model on measurement): prediction
// errors do not accumulate across steps.
func PredictOneStep(actual []float64, a float64, freqDeltas []float64) []float64 {
	if len(actual) == 0 {
		return nil
	}
	out := make([]float64, len(actual))
	out[0] = actual[0]
	for i := 1; i < len(actual); i++ {
		d := 0.0
		if i-1 < len(freqDeltas) {
			d = freqDeltas[i-1]
		}
		out[i] = actual[i-1] + a*d
	}
	return out
}
