package sensor

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/cpm-sim/cpm/internal/stats"
)

func TestTransducerClamps(t *testing.T) {
	tr := Transducer{K0: 2, K1: -0.1}
	if tr.PowerFrac(0) != 0 {
		t.Error("negative estimate should clamp to 0")
	}
	if tr.PowerFrac(1) != 1 {
		t.Error("oversized estimate should clamp to 1")
	}
	if got := tr.PowerFrac(0.3); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("PowerFrac(0.3) = %v, want 0.5", got)
	}
}

func TestFitTransducerRecoversLine(t *testing.T) {
	r := stats.NewRand(4)
	var us, ps []float64
	for i := 0; i < 200; i++ {
		u := r.Float64()
		us = append(us, u)
		ps = append(ps, 0.6*u+0.2+r.Norm(0, 0.01))
	}
	tr, r2, err := FitTransducer(us, ps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.K0-0.6) > 0.02 || math.Abs(tr.K1-0.2) > 0.01 {
		t.Errorf("fit = %+v, want (0.6, 0.2)", tr)
	}
	if r2 < 0.95 {
		t.Errorf("R² = %v, want high (paper: 0.96 average)", r2)
	}
}

func TestFitTransducerErrors(t *testing.T) {
	if _, _, err := FitTransducer([]float64{1}, []float64{1}); err == nil {
		t.Error("single sample should error")
	}
}

func TestFitPlantGainExact(t *testing.T) {
	// Synthesize ΔP = 0.79·Δf exactly.
	deltaF := []float64{0.1, -0.2, 0.05, 0, 0.3}
	deltaP := make([]float64, len(deltaF))
	for i, d := range deltaF {
		deltaP[i] = 0.79 * d
	}
	a, err := FitPlantGain(deltaP, deltaF)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-0.79) > 1e-12 {
		t.Errorf("a = %v, want 0.79", a)
	}
}

func TestFitPlantGainNoisy(t *testing.T) {
	r := stats.NewRand(11)
	n := 500
	df := make([]float64, n)
	dp := make([]float64, n)
	for i := range df {
		df[i] = r.Range(-0.3, 0.3)
		dp[i] = 0.79*df[i] + r.Norm(0, 0.01)
	}
	a, err := FitPlantGain(dp, df)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-0.79) > 0.02 {
		t.Errorf("a = %v, want ≈0.79", a)
	}
}

func TestFitPlantGainErrors(t *testing.T) {
	if _, err := FitPlantGain([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := FitPlantGain([]float64{1, 2}, []float64{0, 0}); err == nil {
		t.Error("all-zero frequency deltas should error")
	}
}

func TestPredictSeries(t *testing.T) {
	got := PredictSeries(0.5, 0.8, []float64{0.1, -0.2})
	want := []float64{0.5, 0.58, 0.42}
	if len(got) != len(want) {
		t.Fatalf("length = %d", len(got))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("series[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// Property: the through-origin least-squares gain minimizes squared error —
// perturbing it in either direction never reduces the residual.
func TestFitPlantGainOptimalityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		n := 20
		df := make([]float64, n)
		dp := make([]float64, n)
		for i := range df {
			df[i] = r.Range(-1, 1)
			dp[i] = r.Range(-1, 1)
		}
		a, err := FitPlantGain(dp, df)
		if err != nil {
			return true
		}
		sse := func(g float64) float64 {
			s := 0.0
			for i := range df {
				e := dp[i] - g*df[i]
				s += e * e
			}
			return s
		}
		base := sse(a)
		return sse(a+0.01) >= base-1e-9 && sse(a-0.01) >= base-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPredictOneStep(t *testing.T) {
	actual := []float64{0.5, 0.6, 0.55}
	deltas := []float64{0.1, -0.05}
	got := PredictOneStep(actual, 0.8, deltas)
	want := []float64{0.5, 0.5 + 0.08, 0.6 - 0.04}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("pred[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if PredictOneStep(nil, 1, nil) != nil {
		t.Error("empty input should give nil")
	}
}
