package sensor

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/cpm-sim/cpm/internal/stats"
)

// synthLevelSamples builds calibration samples from a known ground-truth
// model P = base[l] + slope·U with optional noise.
func synthLevelSamples(r *stats.Rand, base []float64, slope, noise float64, perLevel int) (levels []int, utils, fracs []float64) {
	for l := range base {
		for k := 0; k < perLevel; k++ {
			u := r.Range(0.1, 0.6)
			p := base[l] + slope*u
			if noise > 0 {
				p += r.Norm(0, noise)
			}
			levels = append(levels, l)
			utils = append(utils, u)
			fracs = append(fracs, p)
		}
	}
	return
}

func TestFitLevelTransducerRecoversModel(t *testing.T) {
	r := stats.NewRand(9)
	base := []float64{0.20, 0.28, 0.37, 0.47, 0.58}
	const slope = 0.5
	levels, utils, fracs := synthLevelSamples(r, base, slope, 0.002, 30)
	lt, r2, err := FitLevelTransducer(levels, utils, fracs, len(base))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lt.Slope-slope) > 0.03 {
		t.Errorf("slope = %v, want %v", lt.Slope, slope)
	}
	for l, want := range base {
		if math.Abs(lt.Base[l]-want) > 0.02 {
			t.Errorf("base[%d] = %v, want %v", l, lt.Base[l], want)
		}
	}
	if r2 < 0.99 {
		t.Errorf("R² = %v for a near-exact model", r2)
	}
	// Estimation uses the right intercept per level.
	got := lt.EstimatePowerFrac(0.4, 2)
	if math.Abs(got-(base[2]+slope*0.4)) > 0.03 {
		t.Errorf("estimate = %v", got)
	}
}

func TestFitLevelTransducerInterpolatesMissingLevels(t *testing.T) {
	// Only levels 1 and 4 observed out of 6; the rest interpolate or
	// extrapolate linearly in level index.
	r := stats.NewRand(3)
	var levels []int
	var utils, fracs []float64
	for _, l := range []int{1, 4} {
		for k := 0; k < 40; k++ {
			u := r.Range(0.1, 0.5)
			levels = append(levels, l)
			utils = append(utils, u)
			fracs = append(fracs, 0.1+0.1*float64(l)+0.3*u)
		}
	}
	lt, _, err := FitLevelTransducer(levels, utils, fracs, 6)
	if err != nil {
		t.Fatal(err)
	}
	// base[1] = 0.2, base[4] = 0.5 → interpolated base[2] ≈ 0.3,
	// base[3] ≈ 0.4; extrapolated base[0] ≈ 0.1, base[5] ≈ 0.6.
	want := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	for l, w := range want {
		if math.Abs(lt.Base[l]-w) > 0.03 {
			t.Errorf("base[%d] = %v, want ≈%v", l, lt.Base[l], w)
		}
	}
}

func TestFitLevelTransducerSingleLevel(t *testing.T) {
	levels := []int{2, 2, 2, 2}
	utils := []float64{0.1, 0.2, 0.3, 0.4}
	fracs := []float64{0.3, 0.35, 0.4, 0.45}
	lt, _, err := FitLevelTransducer(levels, utils, fracs, 4)
	if err != nil {
		t.Fatal(err)
	}
	// All levels inherit the single observed intercept.
	for l := 0; l < 4; l++ {
		if math.Abs(lt.Base[l]-lt.Base[2]) > 1e-12 {
			t.Errorf("base[%d] should equal the only observed level's", l)
		}
	}
}

func TestFitLevelTransducerValidation(t *testing.T) {
	if _, _, err := FitLevelTransducer([]int{0}, []float64{1, 2}, []float64{1}, 2); err == nil {
		t.Error("mismatched lengths should be rejected")
	}
	if _, _, err := FitLevelTransducer([]int{0, 1}, []float64{1, 2}, []float64{1, 2}, 0); err == nil {
		t.Error("zero levels should be rejected")
	}
	if _, _, err := FitLevelTransducer([]int{0, 9}, []float64{1, 2}, []float64{1, 2}, 4); err == nil {
		t.Error("out-of-range level should be rejected")
	}
	if _, _, err := FitLevelTransducer([]int{0}, []float64{1}, []float64{1}, 4); err == nil {
		t.Error("single sample should be rejected")
	}
}

func TestLevelTransducerClamping(t *testing.T) {
	lt := LevelTransducer{Base: []float64{0.2, 0.9}, Slope: 0.5}
	if lt.EstimatePowerFrac(0.9, 1) != 1 {
		t.Error("estimate above 1 should clamp")
	}
	if lt.EstimatePowerFrac(-3, 0) > 0.2 {
		t.Error("negative utilization contribution should clamp at 0 floor")
	}
	// Out-of-range levels clamp to the table edges.
	if lt.EstimatePowerFrac(0.1, -5) != lt.EstimatePowerFrac(0.1, 0) {
		t.Error("negative level should clamp to 0")
	}
	if lt.EstimatePowerFrac(0.1, 99) != lt.EstimatePowerFrac(0.1, 1) {
		t.Error("oversized level should clamp to top")
	}
	if (LevelTransducer{}).EstimatePowerFrac(0.5, 0) != 0 {
		t.Error("empty transducer should estimate 0")
	}
}

func TestLinearTransducerImplementsEstimator(t *testing.T) {
	var e Estimator = Transducer{K0: 1, K1: 0}
	if e.EstimatePowerFrac(0.4, 7) != 0.4 {
		t.Error("linear transducer must ignore the level")
	}
}

// Property: the ANCOVA fit never produces a worse R² than forcing slope 0
// (pure per-level means), since the shared slope is the least-squares
// optimum given the intercepts.
func TestLevelFitBeatsMeansProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		base := []float64{0.2, 0.3, 0.45, 0.6}
		slope := r.Range(0, 1)
		levels, utils, fracs := synthLevelSamples(r, base, slope, 0.01, 10)
		lt, r2, err := FitLevelTransducer(levels, utils, fracs, len(base))
		if err != nil {
			return false
		}
		// Residuals with the fitted slope must not exceed residuals with
		// slope zero and per-level means.
		sumP := make([]float64, len(base))
		cnt := make([]int, len(base))
		for i, l := range levels {
			sumP[l] += fracs[i]
			cnt[l]++
		}
		var sseFit, sseMeans float64
		for i, l := range levels {
			e1 := fracs[i] - (lt.Base[l] + lt.Slope*utils[i])
			sseFit += e1 * e1
			e2 := fracs[i] - sumP[l]/float64(cnt[l])
			sseMeans += e2 * e2
		}
		return sseFit <= sseMeans+1e-9 && r2 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
