package sensor

import (
	"errors"
	"fmt"

	"github.com/cpm-sim/cpm/internal/stats"
)

// Estimator converts run-time observables into an island power estimate
// (fraction of island maximum). The PIC always knows the DVFS level it
// itself applied, so estimators receive it alongside utilization.
type Estimator interface {
	EstimatePowerFrac(util float64, level int) float64
}

// EstimatePowerFrac implements Estimator for the paper's pure linear
// transducer, which ignores the operating point.
func (t Transducer) EstimatePowerFrac(u float64, _ int) float64 { return t.PowerFrac(u) }

// LevelTransducer is the operating-point-aware refinement of the linear
// transducer: P = Base[level] + Slope·U. The per-level intercepts absorb
// the large activity-independent power component (clock tree, gating floor,
// leakage — all functions of V and f alone), which a single global line
// must approximate by a chord and therefore under-estimates at the ends of
// the table. The slope still carries the utilization-tracking component, so
// per level the model keeps the paper's linear form. Since the controller
// sets the level itself, this costs no additional sensor.
type LevelTransducer struct {
	// Base is the per-level intercept (fraction of island max power).
	Base []float64
	// Slope is the shared utilization coefficient.
	Slope float64
}

// EstimatePowerFrac implements Estimator.
func (t LevelTransducer) EstimatePowerFrac(u float64, level int) float64 {
	if len(t.Base) == 0 {
		return 0
	}
	if level < 0 {
		level = 0
	}
	if level >= len(t.Base) {
		level = len(t.Base) - 1
	}
	p := t.Base[level] + t.Slope*u
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// FitLevelTransducer fits the within-level (ANCOVA) model from calibration
// samples: a shared slope from level-demeaned covariances, then per-level
// intercepts. Levels with no samples inherit the nearest observed level's
// intercept shifted by linear extrapolation between observed neighbours.
// It returns the fitted model and its R² over all samples.
func FitLevelTransducer(levels []int, utils, fracs []float64, numLevels int) (LevelTransducer, float64, error) {
	if len(levels) != len(utils) || len(utils) != len(fracs) {
		return LevelTransducer{}, 0, errors.New("sensor: mismatched sample lengths")
	}
	if numLevels <= 0 {
		return LevelTransducer{}, 0, errors.New("sensor: non-positive level count")
	}
	if len(utils) < 2 {
		return LevelTransducer{}, 0, stats.ErrInsufficientData
	}
	sumU := make([]float64, numLevels)
	sumP := make([]float64, numLevels)
	cnt := make([]int, numLevels)
	for i, l := range levels {
		if l < 0 || l >= numLevels {
			return LevelTransducer{}, 0, fmt.Errorf("sensor: level %d out of range", l)
		}
		sumU[l] += utils[i]
		sumP[l] += fracs[i]
		cnt[l]++
	}

	// Shared slope from within-level variation.
	var cov, varU float64
	for i, l := range levels {
		du := utils[i] - sumU[l]/float64(cnt[l])
		dp := fracs[i] - sumP[l]/float64(cnt[l])
		cov += du * dp
		varU += du * du
	}
	slope := 0.0
	if varU > 0 {
		slope = cov / varU
	}

	base := make([]float64, numLevels)
	seen := make([]bool, numLevels)
	for l := 0; l < numLevels; l++ {
		if cnt[l] > 0 {
			base[l] = sumP[l]/float64(cnt[l]) - slope*sumU[l]/float64(cnt[l])
			seen[l] = true
		}
	}
	if err := fillMissingLevels(base, seen); err != nil {
		return LevelTransducer{}, 0, err
	}

	t := LevelTransducer{Base: base, Slope: slope}
	// R² over all samples.
	meanP := stats.Mean(fracs)
	var ssRes, ssTot float64
	for i := range fracs {
		e := fracs[i] - (base[levels[i]] + slope*utils[i])
		ssRes += e * e
		d := fracs[i] - meanP
		ssTot += d * d
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
		if r2 < 0 {
			r2 = 0
		}
	}
	return t, r2, nil
}

// fillMissingLevels linearly interpolates intercepts for unobserved levels
// and extrapolates at the edges from the nearest observed pair.
func fillMissingLevels(base []float64, seen []bool) error {
	// Collect observed indices.
	var obs []int
	for i, s := range seen {
		if s {
			obs = append(obs, i)
		}
	}
	switch len(obs) {
	case 0:
		return errors.New("sensor: no observed levels")
	case 1:
		for i := range base {
			base[i] = base[obs[0]]
		}
		return nil
	}
	interp := func(i int) float64 {
		// Find bracketing observed indices (or nearest pair for
		// extrapolation).
		lo, hi := obs[0], obs[1]
		for k := 1; k < len(obs); k++ {
			if obs[k] <= i {
				lo = obs[k]
				if k+1 < len(obs) {
					hi = obs[k+1]
				} else {
					hi = obs[k]
					lo = obs[k-1]
				}
			}
		}
		if i < obs[0] {
			lo, hi = obs[0], obs[1]
		}
		if lo == hi {
			return base[lo]
		}
		f := float64(i-lo) / float64(hi-lo)
		return base[lo] + f*(base[hi]-base[lo])
	}
	for i := range base {
		if !seen[i] {
			base[i] = interp(i)
		}
	}
	return nil
}
