package variation

import (
	"math"
	"testing"
)

func TestUniform(t *testing.T) {
	m := Uniform(8)
	if m.Len() != 8 {
		t.Fatalf("Len = %d", m.Len())
	}
	for i := 0; i < 8; i++ {
		if m.CoreMult(i) != 1 {
			t.Errorf("core %d mult = %v", i, m.CoreMult(i))
		}
	}
	if m.MeanMult() != 1 {
		t.Errorf("mean = %v", m.MeanMult())
	}
}

func TestPaperIslands(t *testing.T) {
	m := PaperIslands(2)
	want := []float64{1.2, 1.2, 1.5, 1.5, 2.0, 2.0, 1.0, 1.0}
	if m.Len() != len(want) {
		t.Fatalf("Len = %d", m.Len())
	}
	for i, w := range want {
		if m.CoreMult(i) != w {
			t.Errorf("core %d mult = %v, want %v", i, m.CoreMult(i), w)
		}
	}
}

func TestFromIslandMultipliersValidation(t *testing.T) {
	if _, err := FromIslandMultipliers(nil, 2); err == nil {
		t.Error("empty spec should be rejected")
	}
	if _, err := FromIslandMultipliers([]float64{1}, 0); err == nil {
		t.Error("zero cores per island should be rejected")
	}
	if _, err := FromIslandMultipliers([]float64{-1}, 2); err == nil {
		t.Error("negative multiplier should be rejected")
	}
}

func TestOutOfRangeIsNominal(t *testing.T) {
	m := Uniform(2)
	if m.CoreMult(-1) != 1 || m.CoreMult(5) != 1 {
		t.Error("out-of-range cores should be nominal")
	}
	if (Map{}).MeanMult() != 1 {
		t.Error("empty map mean should be 1")
	}
}

func TestRandomDeterministicAndCentered(t *testing.T) {
	a := Random(7, 1000, 0.2)
	b := Random(7, 1000, 0.2)
	for i := 0; i < 1000; i++ {
		if a.CoreMult(i) != b.CoreMult(i) {
			t.Fatal("same seed gave different maps")
		}
		if a.CoreMult(i) <= 0 {
			t.Fatal("lognormal multiplier must be positive")
		}
	}
	// Median of lognormal(0, σ) is 1; the mean is slightly above.
	if mean := a.MeanMult(); math.Abs(mean-1) > 0.1 {
		t.Errorf("mean multiplier = %v, want ≈1", mean)
	}
	c := Random(8, 1000, 0.2)
	diff := 0
	for i := 0; i < 1000; i++ {
		if a.CoreMult(i) != c.CoreMult(i) {
			diff++
		}
	}
	if diff < 900 {
		t.Error("different seeds should give different maps")
	}
}
