package variation

import "github.com/cpm-sim/cpm/internal/snapshot"

// Snapshot appends the per-core leakage multipliers. The map is static
// configuration, but it feeds every leakage evaluation, so it is captured
// and cross-checked rather than assumed: restoring a snapshot into a chip
// with a different variation map silently diverges otherwise.
func (m Map) Snapshot(e *snapshot.Encoder) {
	e.Tag(snapshot.TagVariation)
	e.F64s(m.mult)
}

// Restore reads multipliers written by Snapshot into a map of the same
// length.
func (m *Map) Restore(d *snapshot.Decoder) error {
	d.Tag(snapshot.TagVariation)
	mult := d.F64s()
	if err := d.Err(); err != nil {
		return err
	}
	if len(mult) != len(m.mult) {
		return snapshot.ShapeErrorf("%d variation multipliers in snapshot, target has %d", len(mult), len(m.mult))
	}
	copy(m.mult, mult)
	return nil
}
