// Package variation models intra-die process variation as per-core leakage
// multipliers, the substrate for the paper's variation-aware provisioning
// policy (§IV-B). Technology scaling below 65 nm makes leakage differ
// significantly between cores of one die; the paper assumes islands 1–3 leak
// 1.2×, 1.5× and 2× as much as island 4.
package variation

import (
	"errors"
	"fmt"
	"math"

	"github.com/cpm-sim/cpm/internal/stats"
)

// Map assigns each core a leakage multiplier (1 = nominal).
type Map struct {
	mult []float64
}

// Uniform returns a map with every core at nominal leakage.
func Uniform(n int) Map {
	m := make([]float64, n)
	for i := range m {
		m[i] = 1
	}
	return Map{mult: m}
}

// FromIslandMultipliers spreads per-island multipliers over coresPerIsland
// cores each.
func FromIslandMultipliers(perIsland []float64, coresPerIsland int) (Map, error) {
	if len(perIsland) == 0 || coresPerIsland <= 0 {
		return Map{}, errors.New("variation: empty island specification")
	}
	var m []float64
	for i, v := range perIsland {
		if v < 0 {
			return Map{}, fmt.Errorf("variation: negative multiplier for island %d", i)
		}
		for c := 0; c < coresPerIsland; c++ {
			m = append(m, v)
		}
	}
	return Map{mult: m}, nil
}

// PaperIslands returns the §IV-B assumption for a 4-island CMP: islands
// 1, 2 and 3 leak 1.2×, 1.5× and 2× relative to island 4.
func PaperIslands(coresPerIsland int) Map {
	m, err := FromIslandMultipliers([]float64{1.2, 1.5, 2.0, 1.0}, coresPerIsland)
	if err != nil {
		panic("variation: invalid built-in map: " + err.Error())
	}
	return m
}

// Random returns a map with lognormal core-to-core variation of the given
// sigma (in log space) around 1, deterministic in seed. This models the
// random component of intra-die variation for ablation studies.
func Random(seed uint64, n int, sigma float64) Map {
	r := stats.NewRand(stats.DeriveSeed(seed, 0x7a71a7))
	m := make([]float64, n)
	for i := range m {
		m[i] = math.Exp(r.Norm(0, sigma))
	}
	return Map{mult: m}
}

// Len returns the number of cores covered by the map.
func (m Map) Len() int { return len(m.mult) }

// CoreMult returns the multiplier for core i; cores beyond the map are
// nominal, so a small map composes safely with a larger chip.
func (m Map) CoreMult(i int) float64 {
	if i < 0 || i >= len(m.mult) {
		return 1
	}
	return m.mult[i]
}

// MeanMult returns the average multiplier, or 1 for an empty map.
func (m Map) MeanMult() float64 {
	if len(m.mult) == 0 {
		return 1
	}
	s := 0.0
	for _, v := range m.mult {
		s += v
	}
	return s / float64(len(m.mult))
}
