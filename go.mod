module github.com/cpm-sim/cpm

go 1.22
