package cpm_test

import (
	"math"
	"testing"

	cpm "github.com/cpm-sim/cpm"
)

// TestPublicAPIQuickstart exercises the package-level facade end to end the
// way the doc comment advertises: calibrate, build, manage, observe.
func TestPublicAPIQuickstart(t *testing.T) {
	cfg := cpm.DefaultConfig(cpm.Mix1())
	cfg.Parallel = true
	cal, err := cpm.Calibrate(cfg, 40, 160)
	if err != nil {
		t.Fatal(err)
	}
	if cal.UnmanagedPowerW <= 0 || cal.PlantGain <= 0 {
		t.Fatalf("degenerate calibration: %+v", cal)
	}
	chip, err := cpm.NewChip(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if chip.NumIslands() != 4 || chip.NumCores() != 8 {
		t.Fatalf("Mix-1 topology wrong: %d islands / %d cores", chip.NumIslands(), chip.NumCores())
	}
	budget := cal.BudgetW(0.8)
	ctl, err := cpm.NewController(chip, cpm.ControllerConfig{
		BudgetW:     budget,
		Gains:       cpm.PaperGains,
		Transducers: cal.Transducers,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl.Run(120)
	var mean float64
	const n = 200
	for i := 0; i < n; i++ {
		mean += ctl.Step().Sim.ChipPowerW / n
	}
	if math.Abs(mean-budget)/budget > 0.06 {
		t.Errorf("facade-managed chip at %.1f W vs %.1f W budget", mean, budget)
	}
}

func TestPublicMixes(t *testing.T) {
	if cpm.Mix1().Cores() != 8 || cpm.Mix2().Cores() != 8 {
		t.Error("8-core mixes wrong")
	}
	if cpm.Mix3(2).Cores() != 32 {
		t.Error("Mix3 replication wrong")
	}
	if cpm.ThermalMix().Cores() != 8 {
		t.Error("thermal mix wrong")
	}
	if cpm.PaperVariation(2).CoreMult(4) != 2.0 {
		t.Error("paper variation map wrong")
	}
}
