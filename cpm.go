// Package cpm is the public facade of the CPM reproduction: Coordinated
// Power Management in Chip-Multiprocessors (Mishra, Srikantaiah, Kandemir,
// Das — SC 2010), reimplemented as a Go library together with the full
// simulation substrate its evaluation needs.
//
// The paper's architecture is a two-tier feedback controller for a CMP
// organized as voltage/frequency islands:
//
//   - a Global Power Manager (GPM) provisions the chip power budget across
//     islands every 50 ms according to a pluggable policy
//     (performance-aware, thermal-aware, variation-aware), and
//   - a Per-Island Controller (PIC) — a PID designed by pole placement on
//     the identified plant P(z) = a/(z−1) — caps each island at its
//     provision every 2.5 ms by actuating the island's shared DVFS knob.
//
// Typical use mirrors the paper's methodology:
//
//	cfg := cpm.DefaultConfig(cpm.Mix1())      // Table I chip, Mix-1 workload
//	cal, _ := cpm.Calibrate(cfg, 60, 240)     // §II-D system identification
//	chip, _ := cpm.NewChip(cfg)
//	ctl, _ := cpm.NewController(chip, cpm.ControllerConfig{
//	    BudgetW:     cal.BudgetW(0.8),        // cap at 80% of demand
//	    Transducers: cal.Transducers,
//	})
//	for i := 0; i < 400; i++ {
//	    r := ctl.Step()                        // one 2.5 ms PIC interval
//	    _ = r.Sim.ChipPowerW
//	}
//
// Every data table and figure of the paper's evaluation can be regenerated
// with the cpmsim command or the Experiments registry; see DESIGN.md for
// the experiment index and EXPERIMENTS.md for measured-vs-paper results.
package cpm

import (
	"io"

	"github.com/cpm-sim/cpm/internal/control"
	"github.com/cpm-sim/cpm/internal/core"
	"github.com/cpm-sim/cpm/internal/engine"
	"github.com/cpm-sim/cpm/internal/gpm"
	"github.com/cpm-sim/cpm/internal/sensor"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/uarch"
	"github.com/cpm-sim/cpm/internal/variation"
	"github.com/cpm-sim/cpm/internal/workload"
)

// Chip is a simulated voltage/frequency-island CMP (the substrate the
// original evaluation ran on Simics+GEMS+Wattch+HotLeakage).
type Chip = sim.CMP

// ChipConfig describes a chip instance: workload mix, microarchitecture,
// power/thermal models, interval length and executor choice.
type ChipConfig = sim.Config

// Controller is the two-tier CPM instance coupling a GPM and per-island
// PICs to a Chip.
type Controller = core.CPM

// ControllerConfig parameterizes the controller: budget, policy, PID gains
// and calibrated transducers.
type ControllerConfig = core.Config

// Calibration is the §II-D offline system-identification result.
type Calibration = core.Calibration

// StepResult is one managed interval's outcome.
type StepResult = core.StepResult

// Mix assigns benchmarks to cores and defines the island structure.
type Mix = workload.Mix

// Policy decides per-island power provisions at each GPM invocation.
type Policy = gpm.Policy

// PerformanceAware is the Equations 4–6 throughput-maximizing policy.
type PerformanceAware = gpm.PerformanceAware

// ThermalAware wraps a base policy with hotspot constraints (Figure 18).
type ThermalAware = gpm.ThermalAware

// VariationAware is the greedy energy-per-instruction policy of §IV-B.
type VariationAware = gpm.VariationAware

// Gains are PID design parameters; PaperGains is (0.4, 0.4, 0.3).
type Gains = control.Gains

// Estimator converts run-time observables into island power estimates.
type Estimator = sensor.Estimator

// VariationMap assigns per-core leakage multipliers.
type VariationMap = variation.Map

// PaperGains are the §II-D PID design parameters.
var PaperGains = control.PaperGains

// DefaultConfig returns the paper's Table I chip configuration for a mix.
func DefaultConfig(mix Mix) ChipConfig { return sim.DefaultConfig(mix) }

// NewChip builds a simulated CMP.
func NewChip(cfg ChipConfig) (*Chip, error) { return sim.New(cfg) }

// NewController wires the two-tier controller over a chip.
func NewController(chip *Chip, cfg ControllerConfig) (*Controller, error) {
	return core.New(chip, cfg)
}

// Calibrate performs the offline system identification of §II-D.
func Calibrate(cfg ChipConfig, warm, measure int) (Calibration, error) {
	return core.Calibrate(cfg, warm, measure)
}

// Mix1 is Table III(a): four islands each pairing a CPU-bound with a
// memory-bound PARSEC application.
func Mix1() Mix { return workload.Mix1() }

// Mix2 is Table III(b): homogeneous islands.
func Mix2() Mix { return workload.Mix2() }

// Mix3 is Table III(c) for 16 cores (replicas=1) or 32 cores (replicas=2).
func Mix3(replicas int) Mix { return workload.Mix3(replicas) }

// ThermalMix is the Figure 18 assignment: eight single-core islands running
// CPU-bound SPEC workloads.
func ThermalMix() Mix { return workload.ThermalMix() }

// PaperVariation returns the §IV-B intra-die leakage assumption for
// four-island chips: 1.2×/1.5×/2×/1× by island.
func PaperVariation(coresPerIsland int) VariationMap {
	return variation.PaperIslands(coresPerIsland)
}

// TraceSet is a recorded per-core workload trace (see
// ChipConfig.RecordTraces and ChipConfig.Replay): frequency-independent
// interval records that replay under any controller or DVFS trajectory.
type TraceSet = uarch.TraceSet

// FaultPlan injects sensor/actuator faults into a managed run
// (ControllerConfig.Faults) for robustness studies.
type FaultPlan = core.FaultPlan

// EnergyAware is the energy-minimizing policy with a performance floor that
// §II-C sketches.
type EnergyAware = gpm.EnergyAware

// SaveTraces serializes a recorded TraceSet.
func SaveTraces(w io.Writer, set TraceSet) error { return uarch.SaveTraces(w, set) }

// LoadTraces deserializes a TraceSet.
func LoadTraces(r io.Reader) (TraceSet, error) { return uarch.LoadTraces(r) }

// --- run engine --------------------------------------------------------------
//
// The engine unifies every run loop in the repository: a Runner adapts a
// steppable system (managed chip, unmanaged chip, MaxBIPS baseline) to a
// uniform per-interval Step, a Session drives it through warmup and a
// measurement window into a Summary, Observers hook the run at interval,
// epoch and lifecycle granularity, and a Pool executes independent Sessions
// concurrently with deterministic, ordered results.

// Runner adapts one steppable system to the engine.
type Runner = engine.Runner

// Observer receives engine events; Session fans them out during Run.
type Observer = engine.Observer

// ObserverFuncs adapts plain functions to the Observer interface; nil
// fields are skipped.
type ObserverFuncs = engine.Funcs

// Session drives a Runner through warmup and measurement.
type Session = engine.Session

// SessionConfig shapes one run (warmup, window, budget, what to keep).
type SessionConfig = engine.SessionConfig

// Summary aggregates one run's measurement window.
type Summary = engine.Summary

// EngineStep is the unified per-interval observation delivered to
// observers (named to keep the facade's StepResult for the controller's
// own step type).
type EngineStep = engine.Step

// EpochEvent summarises one GPM epoch for observers.
type EpochEvent = engine.Epoch

// RunInfo describes a run at RunStart.
type RunInfo = engine.RunInfo

// Pool executes independent jobs on a bounded worker pool, returning
// results in job order.
type Pool = engine.Pool

// NewSession validates the configuration and binds runner and observers.
func NewSession(r Runner, cfg SessionConfig, obs ...Observer) (*Session, error) {
	return engine.NewSession(r, cfg, obs...)
}

// NewManagedRunner adapts a CPM controller to the engine.
func NewManagedRunner(ctl *Controller) Runner { return engine.NewCPMRunner(ctl) }

// NewUnmanagedRunner adapts a raw chip to the engine.
func NewUnmanagedRunner(chip *Chip) Runner { return engine.NewChipRunner(chip) }

// JobSeed derives a per-job seed for pooled batch runs: deterministic in
// (base, job index) and decorrelated across jobs.
func JobSeed(base uint64, job int) uint64 { return engine.JobSeed(base, job) }

// Degradation returns run's throughput loss vs baseline as a fraction in
// [0, 1], guarding degenerate (zero-instruction) baselines.
func Degradation(run, baseline Summary) float64 { return engine.Degradation(run, baseline) }
