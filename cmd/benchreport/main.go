// Command benchreport runs the repository's interval-kernel benchmark suite
// and emits a machine-readable JSON report — the perf trajectory artifact
// (`make bench` → BENCH_PR<n>.json) that lets successive PRs record
// before/after numbers in a comparable format.
//
// Each benchmark is run -count times and the minimum ns/op is kept: on
// machines with frequency scaling or noisy neighbours the minimum is the
// least-contended estimate, and the suite exists to compare builds, not to
// model steady-state throughput. Baseline numbers from an earlier build can
// be pinned with -baseline to compute speedups into the same report.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// suite lists the benchmarks the report tracks: the cache microbenches, the
// address-stream generator, and the end-to-end interval kernel.
var suite = []struct {
	key   string // JSON key
	bench string // exact benchmark name
	pkg   string // package path
}{
	{"cache_access", "BenchmarkCacheAccess", "."},
	{"cache_hit", "BenchmarkCacheHit", "./internal/cache"},
	{"stream_gen", "BenchmarkStreamGen", "./internal/workload"},
	{"interval_kernel", "BenchmarkIntervalKernel", "./internal/sim"},
	{"sim_step_8core", "BenchmarkSimStep8Sequential", "."},
	{"fleet_round_64", "BenchmarkFleetFarm64", "."},
	{"fleet_round_1024", "BenchmarkFleetFarm1024", "."},
}

// fleets maps the fleet-round keys to their chip counts; the report derives
// per-chip and aggregate-throughput numbers from them against the scalar
// single-chip step (sim_step_8core: N independent sessions compose
// linearly, so the aggregate-scalar reference for N chips is N x that).
var fleets = map[string]int{
	"fleet_round_64":   64,
	"fleet_round_1024": 1024,
}

// Entry is one benchmark's measurement.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// BaselineNsPerOp and Speedup are present when -baseline pinned a
	// reference number for this key.
	BaselineNsPerOp float64 `json:"baseline_ns_per_op,omitempty"`
	Speedup         float64 `json:"speedup,omitempty"`
}

// FleetEntry is one fleet benchmark's derived throughput measurement.
type FleetEntry struct {
	Chips int `json:"chips"`
	// RoundNsPerOp is one lockstep round of the whole fleet.
	RoundNsPerOp float64 `json:"round_ns_per_op"`
	// PerChipNsPerStep is the amortized per-chip interval cost.
	PerChipNsPerStep float64 `json:"per_chip_ns_per_step"`
	// ChipStepsPerSec is the fleet's aggregate throughput.
	ChipStepsPerSec float64 `json:"chips_per_sec"`
	// ScalarChipNsPerStep is the single-chip scalar step (sim_step_8core);
	// AggregateSpeedup is (Chips x scalar) / round — the farm's advantage
	// over running the same fleet as independent scalar sessions.
	ScalarChipNsPerStep float64 `json:"scalar_chip_ns_per_step,omitempty"`
	AggregateSpeedup    float64 `json:"aggregate_speedup,omitempty"`
}

// Report is the emitted JSON document.
type Report struct {
	GoVersion string                `json:"go_version"`
	GOARCH    string                `json:"goarch"`
	Count     int                   `json:"count"`
	Benchtime string                `json:"benchtime"`
	Note      string                `json:"note,omitempty"`
	Results   map[string]Entry      `json:"results"`
	Fleet     map[string]FleetEntry `json:"fleet,omitempty"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("out", "BENCH.json", "output JSON path")
	count := flag.Int("count", 3, "runs per benchmark (minimum ns/op kept)")
	benchtime := flag.String("benchtime", "1s", "go test -benchtime value")
	baseline := flag.String("baseline", "", "comma-separated key=ns_per_op reference numbers (e.g. cache_access=24.5)")
	note := flag.String("note", "", "free-form provenance note stored in the report")
	flag.Parse()

	base, err := parseBaseline(*baseline)
	if err != nil {
		fatal(err)
	}
	rep := Report{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Count:     *count,
		Benchtime: *benchtime,
		Note:      *note,
		Results:   map[string]Entry{},
	}
	for _, b := range suite {
		e, err := run(b.bench, b.pkg, *count, *benchtime)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", b.bench, err))
		}
		if ref, ok := base[b.key]; ok {
			e.BaselineNsPerOp = ref
			e.Speedup = ref / e.NsPerOp
		}
		rep.Results[b.key] = e
		fmt.Printf("%-16s %10.2f ns/op  %d allocs/op\n", b.key, e.NsPerOp, e.AllocsPerOp)
	}
	deriveFleet(&rep)
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// deriveFleet folds the fleet-round measurements into per-chip and
// aggregate-throughput entries, with the speedup over N independent scalar
// sessions when the scalar step is in the report.
func deriveFleet(rep *Report) {
	scalar := rep.Results["sim_step_8core"].NsPerOp
	for key, chips := range fleets {
		e, ok := rep.Results[key]
		if !ok {
			continue
		}
		perChip := e.NsPerOp / float64(chips)
		fe := FleetEntry{
			Chips:            chips,
			RoundNsPerOp:     e.NsPerOp,
			PerChipNsPerStep: perChip,
			ChipStepsPerSec:  1e9 / perChip,
		}
		if scalar > 0 {
			fe.ScalarChipNsPerStep = scalar
			fe.AggregateSpeedup = scalar / perChip
		}
		if rep.Fleet == nil {
			rep.Fleet = map[string]FleetEntry{}
		}
		rep.Fleet[key] = fe
		fmt.Printf("%-16s %d chips: %.0f chips/sec, %.0f ns/chip-step, %.1fx aggregate vs scalar\n",
			key, chips, fe.ChipStepsPerSec, perChip, fe.AggregateSpeedup)
	}
}

// run executes one benchmark count times and keeps the minimum ns/op (with
// its alloc counters, which do not vary between runs).
func run(bench, pkg string, count int, benchtime string) (Entry, error) {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", "^"+bench+"$",
		"-benchtime", benchtime, "-count", strconv.Itoa(count), "-benchmem", pkg)
	cmd.Stderr = os.Stderr
	outb, err := cmd.Output()
	if err != nil {
		return Entry{}, err
	}
	best := Entry{}
	seen := false
	for _, line := range strings.Split(string(outb), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if !seen || ns < best.NsPerOp {
			best.NsPerOp = ns
			if m[3] != "" {
				best.BytesPerOp, _ = strconv.ParseInt(m[3], 10, 64)
				best.AllocsPerOp, _ = strconv.ParseInt(m[4], 10, 64)
			}
			seen = true
		}
	}
	if !seen {
		return Entry{}, fmt.Errorf("no benchmark output parsed")
	}
	return best, nil
}

func parseBaseline(s string) (map[string]float64, error) {
	out := map[string]float64{}
	if s == "" {
		return out, nil
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("benchreport: malformed baseline entry %q", kv)
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, fmt.Errorf("benchreport: baseline %s: %w", k, err)
		}
		out[k] = f
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchreport:", err)
	os.Exit(1)
}
