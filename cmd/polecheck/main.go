// Command polecheck performs the §II-D controller analysis that the paper
// did offline in Matlab: given a plant gain a and PID gains, it reports the
// closed-loop transfer function, its poles, the Jury stability verdict, the
// step-response metrics, and the range of run-time gain drift g the design
// tolerates (Equation 13's analysis).
//
// It can also search for gains meeting a specification (-design).
//
// Usage:
//
//	polecheck                       # the paper's design: a=0.79, K=(0.4,0.4,0.3)
//	polecheck -a 0.45               # the gain identified on this repository's substrate
//	polecheck -kp 0.5 -ki 0.3 -kd 0.2
//	polecheck -design               # grid-search gains for the default spec
package main

import (
	"flag"
	"fmt"
	"math/cmplx"
	"os"

	"github.com/cpm-sim/cpm/internal/control"
)

func main() {
	a := flag.Float64("a", control.PaperPlantGain, "plant gain of P(z) = a/(z-1)")
	kp := flag.Float64("kp", control.PaperGains.KP, "proportional gain")
	ki := flag.Float64("ki", control.PaperGains.KI, "integral gain")
	kd := flag.Float64("kd", control.PaperGains.KD, "derivative gain")
	design := flag.Bool("design", false, "search for gains meeting the default spec instead")
	flag.Parse()

	if *design {
		runDesign(*a)
		return
	}

	g := control.Gains{KP: *kp, KI: *ki, KD: *kd}
	an, err := control.Analyze(*a, g)
	if err != nil {
		fmt.Fprintln(os.Stderr, "polecheck:", err)
		os.Exit(1)
	}
	fmt.Printf("Plant      : P(z) = %.3f/(z-1)\n", *a)
	fmt.Printf("Controller : C(z) with (K_P, K_I, K_D) = (%.3g, %.3g, %.3g)\n", g.KP, g.KI, g.KD)
	fmt.Printf("Closed loop: Y(z) = %v\n", an.Closed)
	fmt.Printf("Char. poly : %v\n\n", an.CharPoly)
	fmt.Println("Closed-loop poles:")
	for _, p := range an.Poles {
		fmt.Printf("  %v  (|.| = %.4f)\n", p, cmplx.Abs(p))
	}
	fmt.Printf("Spectral radius: %.4f — %s\n", an.SpectralRadius, verdict(an.Stable))
	if !an.Stable {
		return
	}
	fmt.Printf("\nUnit-step response:\n")
	fmt.Printf("  max overshoot      : %.1f%% of the step\n", an.Step.MaxOvershoot*100)
	fmt.Printf("  settling time (2%%) : %d invocations\n", an.Step.SettlingTime)
	fmt.Printf("  steady-state error : %.2g\n", an.Step.SteadyStateError)

	gmax, err := control.MaxStableGainScale(*a, g, 1e-5)
	if err != nil {
		fmt.Fprintln(os.Stderr, "polecheck:", err)
		os.Exit(1)
	}
	fmt.Printf("\nStability is preserved for plant-gain drift 0 < g < %.4f\n", gmax)
	fmt.Printf("(the paper reports 0 < g < 2.1 for a = 0.79 with its gains)\n")
}

func runDesign(a float64) {
	spec := control.PaperSpec
	g, an, err := control.DesignGains(a, spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "polecheck: design failed:", err)
		os.Exit(1)
	}
	fmt.Printf("Designed gains for a = %.3f: (K_P, K_I, K_D) = (%.2f, %.2f, %.2f)\n", a, g.KP, g.KI, g.KD)
	fmt.Printf("  poles            : %v\n", an.Poles)
	fmt.Printf("  overshoot        : %.1f%% of the step\n", an.Step.MaxOvershoot*100)
	fmt.Printf("  settling (2%%)    : %d invocations\n", an.Step.SettlingTime)
	fmt.Printf("  steady-state err : %.2g\n", an.Step.SteadyStateError)
}

func verdict(stable bool) string {
	if stable {
		return "STABLE (all poles inside the unit circle; Jury criterion agrees)"
	}
	return "UNSTABLE"
}
