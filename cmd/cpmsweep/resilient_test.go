package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestResilientSweepMatchesDefault is the CLI-level crash-equivalence
// proof: the resilient route must emit CSV byte-identical to the default
// farm route — with no faults, with a kill injected at EVERY interval
// boundary, and with a rollback-heavy cadence where kills land between
// checkpoints.
func TestResilientSweepMatchesDefault(t *testing.T) {
	if testing.Short() {
		t.Skip("resilient sweeps in -short mode")
	}
	o := testOptions(1)
	o.Fracs = []float64{0.7, 0.8, 0.9}
	o.Check = true
	want := runSweep(t, o)

	cases := []struct {
		name                 string
		killEvery, ckptEvery int
		workers              int
	}{
		{"no faults", 0, 0, 2},
		{"kill every boundary", 1, 1, 2},
		{"rollback cadence", 7, 5, 3},
		{"serial with kills", 4, 5, 1},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			ro := o
			ro.Resilient = true
			ro.KillEvery = c.killEvery
			ro.CkptEvery = c.ckptEvery
			ro.Workers = c.workers
			var out, log bytes.Buffer
			if err := sweep(ro, &out, &log); err != nil {
				t.Fatalf("resilient sweep: %v\nlog:\n%s", err, log.String())
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("resilient CSV differs from the default route:\n--- default ---\n%s--- resilient ---\n%s",
					want, out.Bytes())
			}
			if !strings.Contains(log.String(), "resilient sweep:") {
				t.Errorf("no coordinator stats logged:\n%s", log.String())
			}
			if c.killEvery > 0 && !strings.Contains(log.String(), "migrating") {
				t.Errorf("kills injected but no migration logged:\n%s", log.String())
			}
		})
	}
}

// TestResilientWarmstartMatchesScalar pins the snapshot-tree fork path:
// warm-started resilient sweeps (budget points forked from warm chip
// snapshots recorded as tree roots) must match the scalar warm-started CSV
// even while workers are being killed.
func TestResilientWarmstartMatchesScalar(t *testing.T) {
	if testing.Short() {
		t.Skip("warm-started resilient sweep in -short mode")
	}
	o := testOptions(1)
	o.Fracs = []float64{0.7, 0.9}
	o.WarmStart = true
	o.Check = true

	so := o
	so.Scalar = true
	want := runSweep(t, so)

	ro := o
	ro.Resilient = true
	ro.KillEvery = 3
	ro.CkptEvery = 5
	ro.Workers = 4
	var out, log bytes.Buffer
	if err := sweep(ro, &out, &log); err != nil {
		t.Fatalf("warm-started resilient sweep: %v\nlog:\n%s", err, log.String())
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("warm-started resilient CSV differs from scalar:\n--- scalar ---\n%s--- resilient ---\n%s",
			want, out.Bytes())
	}
}

func TestParseSweepCLIResilient(t *testing.T) {
	o, err := parseSweepCLI([]string{"-resilient", "-kill-every", "3", "-ckpt-every", "5"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Resilient || o.KillEvery != 3 || o.CkptEvery != 5 {
		t.Errorf("resilient flags not threaded: %+v", o)
	}
	rejects := []struct {
		name string
		argv []string
		want string
	}{
		{"kill without resilient", []string{"-kill-every", "2"}, "require -resilient"},
		{"ckpt without resilient", []string{"-ckpt-every", "5"}, "require -resilient"},
		{"negative kill", []string{"-resilient", "-kill-every", "-1"}, "-kill-every must be >= 0"},
		{"negative ckpt", []string{"-resilient", "-ckpt-every", "-1"}, "-ckpt-every must be >= 0"},
		{"resilient with scalar", []string{"-resilient", "-scalar"}, "mutually exclusive"},
	}
	for _, c := range rejects {
		t.Run(c.name, func(t *testing.T) {
			_, err := parseSweepCLI(c.argv, io.Discard)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("parseSweepCLI(%v) = %v, want error containing %q", c.argv, err, c.want)
			}
		})
	}
}
