package main

import (
	"fmt"
	"io"
	"time"

	"github.com/cpm-sim/cpm/internal/check"
	"github.com/cpm-sim/cpm/internal/core"
	"github.com/cpm-sim/cpm/internal/engine"
	"github.com/cpm-sim/cpm/internal/farm"
	"github.com/cpm-sim/cpm/internal/metrics"
	"github.com/cpm-sim/cpm/internal/pic"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/snapshot"
)

// sweepFarm is the default route: every point of the sweep — the unmanaged
// baseline plus a CPM and a MaxBIPS run per budget — becomes one chip of a
// farm. All points share the sweep's workload identity (budget, controller
// and initial DVFS level are compute-half state), so they collapse into one
// sampler group and the sweep pays the sampling cost of a single run
// instead of 1+2*len(budgets) runs. Chips are bit-identical to the scalar
// route's, so the CSV is byte-identical at any -workers or -farm-size.
func sweepFarm(cfg sim.Config, cal core.Calibration, o sweepOptions, logw io.Writer) ([]sweepRow, error) {
	var warmManaged, warmBase, samplerState []byte
	var err error
	warmLeft := o.Warm
	if o.WarmStart {
		warmManaged, warmBase, samplerState, err = warmFarmTemplates(cfg, o.Warm)
		if err != nil {
			return nil, err
		}
		warmLeft = 0
		fmt.Fprintf(logw, "warm-started: %d warm epochs simulated once, forked across %d budget points\n",
			o.Warm, len(o.Fracs))
	}

	bcfg := cfg
	bcfg.InitialLevel = -1

	// Point layout: 0 is the unmanaged baseline, then (cpm, maxbips) per
	// budget fraction. Suites and error contexts are indexed the same way.
	nPoints := 1 + 2*len(o.Fracs)
	specs := make([]farm.ChipSpec, 0, nPoints)
	suites := make([]*check.Suite, nPoints)
	errCtx := make([]string, nPoints)

	specs = append(specs, farm.ChipSpec{
		Config: bcfg,
		Init:   restoreWarmTemplate(warmBase),
		NewSession: func(cmp *sim.CMP) (*engine.Session, error) {
			var obs []engine.Observer
			if o.Check {
				suites[0] = check.All(check.ForChip(cmp, 0))
				obs = append(obs, suites[0])
			}
			if o.Metrics != nil {
				obs = append(obs, metrics.NewObserver(o.Metrics, metrics.ObserverOptions{Label: "unmanaged", Chip: cmp}))
			}
			return engine.NewSession(engine.NewChipRunner(cmp), engine.SessionConfig{
				WarmEpochs: warmLeft, MeasureEpochs: o.Epochs, Label: "unmanaged",
			}, obs...)
		},
	})

	for pi, frac := range o.Fracs {
		frac := frac
		budget := cal.BudgetW(frac)
		idxCPM, idxMB := 1+2*pi, 2+2*pi
		errCtx[idxCPM] = fmt.Sprintf("budget %.2f W", budget)
		errCtx[idxMB] = fmt.Sprintf("maxbips budget %.2f W", budget)

		specs = append(specs, farm.ChipSpec{
			Config: cfg,
			Init:   restoreWarmTemplate(warmManaged),
			NewSession: func(cmp *sim.CMP) (*engine.Session, error) {
				// Policies can be stateful (e.g. variation-aware), so each
				// point builds its own instance.
				pol, err := makePolicy(o.Policy)
				if err != nil {
					return nil, err
				}
				c, err := core.New(cmp, core.Config{BudgetW: budget, Policy: pol, Transducers: cal.Transducers, Adaptive: adaptiveConfig(o.Adaptive, cal)})
				if err != nil {
					return nil, err
				}
				var obs []engine.Observer
				if o.Check {
					suites[idxCPM] = check.ForCPM(c, budget)
					obs = append(obs, suites[idxCPM])
				}
				if o.Metrics != nil {
					pics := make([]*pic.Controller, cmp.NumIslands())
					for i := range pics {
						pics[i] = c.PIC(i)
					}
					obs = append(obs, metrics.NewObserver(o.Metrics, metrics.ObserverOptions{
						Label: fmt.Sprintf("cpm-%.2f", frac), Chip: cmp, PICs: pics,
					}))
				}
				return engine.NewSession(engine.NewCPMRunner(c), engine.SessionConfig{
					WarmEpochs: warmLeft, MeasureEpochs: o.Epochs, BudgetW: budget, Label: "cpm",
				}, obs...)
			},
		})

		specs = append(specs, farm.ChipSpec{
			Config: cfg,
			Init:   restoreWarmTemplate(warmManaged),
			NewSession: func(cmp *sim.CMP) (*engine.Session, error) {
				planner, err := engine.NewStaticPlanner(cmp)
				if err != nil {
					return nil, err
				}
				r, err := engine.NewMaxBIPSRunner(cmp, planner, budget, 20)
				if err != nil {
					return nil, err
				}
				var obs []engine.Observer
				if o.Check {
					// Open-loop MaxBIPS overshoots realized power by design;
					// widen the budget tolerance to the paper's reported
					// ~20% worst case.
					ccfg := check.ForChip(cmp, budget)
					ccfg.BudgetTolFrac = 0.25
					ccfg.IslandTolFrac = 0.25
					suites[idxMB] = check.All(ccfg)
					obs = append(obs, suites[idxMB])
				}
				if o.Metrics != nil {
					obs = append(obs, metrics.NewObserver(o.Metrics, metrics.ObserverOptions{
						Label: fmt.Sprintf("maxbips-%.2f", frac), Chip: cmp,
					}))
				}
				return engine.NewSession(r, engine.SessionConfig{
					WarmEpochs: warmLeft, MeasureEpochs: o.Epochs, BudgetW: budget, Label: "maxbips",
				}, obs...)
			},
		})
	}

	f, err := farm.New(specs, farm.Options{MaxGroup: o.FarmSize, SamplerState: samplerState})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(logw, "farm: %d points in %d sampler group(s)\n", f.NumChips(), f.NumGroups())

	sums, err := f.Run(engine.Pool{Workers: o.Workers}, progressPrinter(logw))
	if err != nil {
		return nil, err
	}
	for i, s := range suites {
		if s == nil {
			continue
		}
		if err := s.Err(); err != nil {
			if errCtx[i] == "" {
				return nil, err
			}
			return nil, fmt.Errorf("%s: %w", errCtx[i], err)
		}
	}

	base := sums[0]
	rows := make([]sweepRow, len(o.Fracs))
	for pi, frac := range o.Fracs {
		ours, mb := sums[1+2*pi], sums[2+2*pi]
		rows[pi] = sweepRow{
			frac: frac, budgetW: cal.BudgetW(frac),
			oursPowerW: ours.MeanPowerW, oursDegr: engine.Degradation(ours, base),
			maxbipsPowerW: mb.MeanPowerW, maxbipsDegr: engine.Degradation(mb, base),
		}
	}
	return rows, nil
}

// progressPrinter reports fleet progress and an ETA to the log writer as
// points finish. Points-completed counts sessions, not warm templates, so
// the totals are correct under -warmstart too. Stdout never sees it — the
// CSV stays byte-identical with or without progress.
func progressPrinter(logw io.Writer) func(done, total int) {
	start := time.Now()
	return func(done, total int) {
		elapsed := time.Since(start)
		if done <= 0 || done > total {
			fmt.Fprintf(logw, "progress: %d/%d points\n", done, total)
			return
		}
		eta := elapsed / time.Duration(done) * time.Duration(total-done)
		fmt.Fprintf(logw, "progress: %d/%d points, elapsed %s, eta %s\n",
			done, total, elapsed.Round(time.Second), eta.Round(time.Second))
	}
}

// warmFarmTemplates warms the two template chips — managed-init for the
// budget points, top-level-init for the unmanaged baseline — in lockstep
// over ONE shared sampler, and snapshots both plus the sampler. Budget
// points fork from the matching template and the farm's samplers resume
// from the sampler state, cursors aligned with the templates' interval
// counters.
func warmFarmTemplates(cfg sim.Config, warmEpochs int) (managed, base, samplerState []byte, err error) {
	sampler, err := sim.NewSampler(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	cmpM, err := sim.NewWithRecords(cfg, sampler)
	if err != nil {
		return nil, nil, nil, err
	}
	cmpM.SetCacheStatsSource(sampler.CacheStats)
	bcfg := cfg
	bcfg.InitialLevel = -1
	cmpB, err := sim.NewWithRecords(bcfg, sampler)
	if err != nil {
		return nil, nil, nil, err
	}
	cmpB.SetCacheStatsSource(sampler.CacheStats)

	for k := 0; k < warmEpochs*20; k++ {
		cmpM.Step()
		cmpB.Step()
	}

	snapChip := func(c *sim.CMP) ([]byte, error) {
		e := snapshot.NewEncoder()
		if err := c.Snapshot(e); err != nil {
			return nil, err
		}
		return e.Bytes(), nil
	}
	if managed, err = snapChip(cmpM); err != nil {
		return nil, nil, nil, err
	}
	if base, err = snapChip(cmpB); err != nil {
		return nil, nil, nil, err
	}
	e := snapshot.NewEncoder()
	sampler.Snapshot(e)
	return managed, base, e.Bytes(), nil
}

// restoreWarmTemplate adapts a warm-template snapshot into a ChipSpec.Init;
// nil state (no -warmstart) means no Init. The bytes are only read, so
// every point forks from the same buffer.
func restoreWarmTemplate(state []byte) func(*sim.CMP) error {
	if state == nil {
		return nil
	}
	return func(cmp *sim.CMP) error {
		if err := cmp.Restore(snapshot.NewDecoder(state)); err != nil {
			return fmt.Errorf("cpmsweep: forking warm chip: %w", err)
		}
		return nil
	}
}
