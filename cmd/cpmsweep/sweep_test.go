package main

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"github.com/cpm-sim/cpm/internal/core"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/workload"
)

func testOptions(workers int) sweepOptions {
	return sweepOptions{
		Mix:     workload.Mix1(),
		Policy:  "performance",
		Fracs:   []float64{0.5, 0.6, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95},
		Seed:    1,
		Warm:    1,
		Epochs:  2,
		Workers: workers,
	}
}

// TestSweepOutputIdenticalAcrossWorkerCounts is the CSV-level determinism
// guarantee: pooled execution must be byte-identical to serial.
func TestSweepOutputIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	var serial, pooled bytes.Buffer
	if err := sweep(testOptions(1), &serial, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := sweep(testOptions(8), &pooled, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), pooled.Bytes()) {
		t.Fatalf("workers=8 output differs from workers=1:\n--- serial ---\n%s--- pooled ---\n%s",
			serial.String(), pooled.String())
	}
	if serial.Len() == 0 {
		t.Fatal("empty sweep output")
	}
}

// TestWarmStartSweepDeterministic pins the forked warm-up path: every
// budget point restores the same warm snapshot, so the CSV must still be
// byte-identical across worker counts, and the checked suite must stay
// clean on the forked chips.
func TestWarmStartSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("warm-start sweep in -short mode")
	}
	warmOpts := func(workers int) sweepOptions {
		o := testOptions(workers)
		o.Fracs = []float64{0.7, 0.8, 0.9}
		o.WarmStart = true
		o.Check = true
		return o
	}
	var serial, pooled bytes.Buffer
	if err := sweep(warmOpts(1), &serial, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := sweep(warmOpts(8), &pooled, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), pooled.Bytes()) {
		t.Fatalf("warm-started workers=8 output differs from workers=1:\n--- serial ---\n%s--- pooled ---\n%s",
			serial.String(), pooled.String())
	}
	if serial.Len() == 0 {
		t.Fatal("empty warm-started sweep output")
	}
}

func TestParseBudgets(t *testing.T) {
	got, err := parseBudgets(" 0.5, 0.8 ,0.95")
	if err != nil || len(got) != 3 || got[0] != 0.5 || got[2] != 0.95 {
		t.Fatalf("parseBudgets = %v, %v", got, err)
	}
	for _, bad := range []string{"", "x", "0", "1.5", "0.5,,0.8"} {
		if _, err := parseBudgets(bad); err == nil {
			t.Errorf("parseBudgets(%q) accepted", bad)
		}
	}
}

func TestParseSweepCLIValid(t *testing.T) {
	o, err := parseSweepCLI([]string{"-mix", "mix3", "-policy", "equal", "-budgets", "0.7,0.8", "-warm", "2", "-epochs", "4", "-check", "-warmstart", "-adaptive"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.Mix.Name != "Mix-3" || o.Policy != "equal" || len(o.Fracs) != 2 ||
		o.Warm != 2 || o.Epochs != 4 || !o.Check || !o.Parallel || !o.WarmStart || !o.Adaptive {
		t.Errorf("options not threaded: %+v", o)
	}
}

// TestSweepAdaptiveAndPredictiveRoutes pins the new control configurations
// through both sweep routes: for each of (-adaptive fixed-policy, -policy
// mpc, -policy cache) the farm route must emit byte-identical CSV to the
// scalar route, under the invariant suite.
func TestSweepAdaptiveAndPredictiveRoutes(t *testing.T) {
	if testing.Short() {
		t.Skip("adaptive/predictive sweeps in -short mode")
	}
	cases := []struct {
		name     string
		policy   string
		adaptive bool
	}{
		{"adaptive", "performance", true},
		{"mpc", "mpc", false},
		{"cache", "cache", false},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			opts := func(scalar bool) sweepOptions {
				o := testOptions(2)
				o.Fracs = []float64{0.8}
				o.Policy = c.policy
				o.Adaptive = c.adaptive
				o.Check = true
				o.Scalar = scalar
				return o
			}
			var scalar, farmed bytes.Buffer
			if err := sweep(opts(true), &scalar, io.Discard); err != nil {
				t.Fatalf("scalar route: %v", err)
			}
			if err := sweep(opts(false), &farmed, io.Discard); err != nil {
				t.Fatalf("farm route: %v", err)
			}
			if !bytes.Equal(scalar.Bytes(), farmed.Bytes()) {
				t.Fatalf("farm route differs from scalar:\n--- scalar ---\n%s--- farm ---\n%s",
					scalar.String(), farmed.String())
			}
			if scalar.Len() == 0 {
				t.Fatal("empty sweep output")
			}
		})
	}
}

func TestParseSweepCLIDiagFlags(t *testing.T) {
	o, err := parseSweepCLI([]string{"-metrics", "out.prom", "-pprof", "localhost:6060", "-trace", "run.trace"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.Diag == nil {
		t.Fatal("diag flags not bound")
	}
	if o.Diag.MetricsPath != "out.prom" || o.Diag.PprofAddr != "localhost:6060" || o.Diag.TracePath != "run.trace" {
		t.Errorf("diag flags not threaded: %+v", o.Diag)
	}
	if reg := o.Diag.Registry(); reg == nil {
		t.Error("-metrics given but Registry() == nil")
	}
	// Without -metrics the registry must stay nil so runs skip the observer.
	o, err = parseSweepCLI(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if reg := o.Diag.Registry(); reg != nil {
		t.Error("no -metrics flag but Registry() != nil")
	}
}

func TestParseSweepCLIRejects(t *testing.T) {
	cases := []struct {
		name string
		argv []string
		want string
	}{
		{"zero seed", []string{"-seed", "0"}, "-seed must be non-zero"},
		{"negative warm", []string{"-warm", "-1"}, "-warm must be >= 0"},
		{"zero epochs", []string{"-epochs", "0"}, "-epochs must be > 0"},
		{"negative epochs", []string{"-epochs", "-3"}, "-epochs must be > 0"},
		{"negative workers", []string{"-workers", "-1"}, "-workers must be >= 0"},
		{"bad mix", []string{"-mix", "nope"}, "nope"},
		{"bad policy", []string{"-policy", "nope"}, "unknown policy"},
		{"bad budget", []string{"-budgets", "1.5"}, "out of (0, 1]"},
		{"empty budgets", []string{"-budgets", ""}, "bad budget"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := parseSweepCLI(c.argv, io.Discard)
			if err == nil {
				t.Fatalf("parseSweepCLI(%v) accepted", c.argv)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("parseSweepCLI(%v) = %v, want error containing %q", c.argv, err, c.want)
			}
		})
	}
}

// TestSweepChecked runs a tiny checked sweep end to end: the -check plumbing
// must attach the suite and the canonical mix must come back clean.
func TestSweepChecked(t *testing.T) {
	if testing.Short() {
		t.Skip("checked sweep in -short mode")
	}
	o := testOptions(1)
	o.Fracs = []float64{0.8}
	o.Check = true
	var out bytes.Buffer
	if err := sweep(o, &out, io.Discard); err != nil {
		t.Fatalf("checked sweep failed: %v", err)
	}
	if !strings.Contains(out.String(), "budget_frac") {
		t.Fatalf("no CSV emitted:\n%s", out.String())
	}
}

func TestMakePolicyNames(t *testing.T) {
	for _, name := range []string{"performance", "equal", "variation", "thermal", "mpc", "cache"} {
		p, err := makePolicy(name)
		if err != nil || p == nil {
			t.Errorf("makePolicy(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := makePolicy("nope"); err == nil {
		t.Error("makePolicy(\"nope\") accepted an unknown policy name")
	}
}

// BenchmarkPoolSweep compares a serial 8-point sweep against the pooled
// executor. Calibration and the unmanaged baseline are shared setup; the
// benchmark isolates the per-budget-point fan-out. Island-level parallelism
// is disabled so the two concurrency levels don't compete for cores.
func BenchmarkPoolSweep(b *testing.B) {
	o := testOptions(1)
	o.Parallel = false
	cfg := sim.DefaultConfig(o.Mix)
	cfg.Seed = o.Seed
	cfg.Parallel = o.Parallel
	cal, err := core.Calibrate(cfg, 60, 240)
	if err != nil {
		b.Fatal(err)
	}
	base, err := measureUnmanaged(cfg, o.Warm, o.Epochs, false, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, workers int) {
		b.Helper()
		o := o
		o.Workers = workers
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sweepRows(cfg, cal, base, o, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, 1) })
	b.Run("pooled", func(b *testing.B) { run(b, 0) })
}

// runSweep executes one sweep and returns the CSV bytes.
func runSweep(t *testing.T, o sweepOptions) []byte {
	t.Helper()
	var out bytes.Buffer
	if err := sweep(o, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("empty sweep output")
	}
	return out.Bytes()
}

// TestSweepFarmMatchesScalar is the sweep-level equivalence contract: the
// farm route (one shared sampler across every point) must produce CSV
// byte-identical to the legacy scalar route, at several farm sizes, with
// the invariant suite attached to every point.
func TestSweepFarmMatchesScalar(t *testing.T) {
	if testing.Short() {
		t.Skip("farm-vs-scalar sweep in -short mode")
	}
	o := testOptions(1)
	o.Fracs = []float64{0.7, 0.8, 0.9}
	o.Check = true

	so := o
	so.Scalar = true
	scalar := runSweep(t, so)

	for _, size := range []int{0, 1, 3} {
		fo := o
		fo.FarmSize = size
		fo.Workers = 2
		if got := runSweep(t, fo); !bytes.Equal(got, scalar) {
			t.Errorf("farm-size=%d CSV differs from scalar route:\n--- scalar ---\n%s--- farm ---\n%s",
				size, scalar, got)
		}
	}
}

// TestSweepFarmWarmstartMatchesScalar pins the warm-started farm route:
// thin warm templates over a shared sampler must fork into the same
// trajectories as the scalar route's live warm chips.
func TestSweepFarmWarmstartMatchesScalar(t *testing.T) {
	if testing.Short() {
		t.Skip("warm-started farm sweep in -short mode")
	}
	o := testOptions(1)
	o.Fracs = []float64{0.7, 0.9}
	o.WarmStart = true
	o.Check = true

	so := o
	so.Scalar = true
	scalar := runSweep(t, so)

	fo := o
	fo.Workers = 4
	if got := runSweep(t, fo); !bytes.Equal(got, scalar) {
		t.Errorf("warm-started farm CSV differs from scalar route:\n--- scalar ---\n%s--- farm ---\n%s",
			scalar, got)
	}
}
