package main

import (
	"bytes"
	"encoding/json"
	"io"
	"sync"
	"testing"

	"github.com/cpm-sim/cpm/internal/metrics"
)

// TestSweepConcurrentScrape runs a pooled sweep with a shared telemetry
// registry while a scraper goroutine continuously exports it — the
// registry's race-safety contract (budget points record concurrently, a
// monitoring endpoint may read mid-run). Run under -race this is the
// subsystem's concurrency regression test.
func TestSweepConcurrentScrape(t *testing.T) {
	if testing.Short() {
		t.Skip("pooled sweep in -short mode")
	}
	o := testOptions(4)
	o.Fracs = []float64{0.7, 0.8, 0.9, 0.95}
	o.Metrics = metrics.NewRegistry()

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := o.Metrics.WritePrometheus(io.Discard); err != nil {
				t.Errorf("concurrent WritePrometheus: %v", err)
				return
			}
			if err := o.Metrics.WriteJSON(io.Discard); err != nil {
				t.Errorf("concurrent WriteJSON: %v", err)
				return
			}
		}
	}()
	err := sweep(o, io.Discard, io.Discard)
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatalf("sweep with metrics: %v", err)
	}

	// The final export must be a valid Prometheus document and valid JSON,
	// with every label the sweep runs under present.
	var prom bytes.Buffer
	if err := o.Metrics.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if _, err := metrics.ParsePrometheus(bytes.NewReader(prom.Bytes())); err != nil {
		t.Fatalf("final export does not round-trip: %v\n%s", err, prom.String())
	}
	var jsonBuf bytes.Buffer
	if err := o.Metrics.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var doc any
	if err := json.Unmarshal(jsonBuf.Bytes(), &doc); err != nil {
		t.Fatalf("final JSON export invalid: %v", err)
	}
	for _, label := range []string{`run="unmanaged"`, `run="cpm-0.70"`, `run="cpm-0.95"`, `run="maxbips-0.80"`} {
		if !bytes.Contains(prom.Bytes(), []byte(label)) {
			t.Errorf("export missing label %s", label)
		}
	}
}
