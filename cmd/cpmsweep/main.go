// Command cpmsweep runs managed-vs-baseline parameter sweeps and emits CSV,
// the workhorse behind custom variants of Figures 11–17.
//
// By default the sweep routes every point — the unmanaged baseline plus a
// CPM and a MaxBIPS run per budget — through one internal/farm fleet: the
// points share a workload identity, so they share one trace sampler and
// each pays only its cheap frequency-dependent half. -scalar restores the
// legacy independent-simulation path; both paths, any -workers and any
// -farm-size produce byte-identical CSV (results are emitted in budget
// order). Progress and ETA go to stderr; stdout carries only the CSV.
//
// Usage:
//
//	cpmsweep -mix mix1 -budgets 0.5,0.6,0.7,0.8,0.9 -epochs 16
//	cpmsweep -mix mix3 -policy variation -budgets 0.8 -workers 4
//
// Columns: budget_frac, budget_w, ours_power_w, ours_degradation,
// maxbips_power_w, maxbips_degradation.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/cpm-sim/cpm/internal/check"
	"github.com/cpm-sim/cpm/internal/core"
	"github.com/cpm-sim/cpm/internal/diag"
	"github.com/cpm-sim/cpm/internal/engine"
	"github.com/cpm-sim/cpm/internal/gpm"
	"github.com/cpm-sim/cpm/internal/metrics"
	"github.com/cpm-sim/cpm/internal/pic"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/snapshot"
	"github.com/cpm-sim/cpm/internal/thermal"
	"github.com/cpm-sim/cpm/internal/workload"
)

// parseSweepCLI parses and validates argv (without the program name),
// returning the sweep options. Every reject path is an error, not an exit,
// so the validation is testable.
func parseSweepCLI(argv []string, stderr io.Writer) (sweepOptions, error) {
	fs := flag.NewFlagSet("cpmsweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	mixName := fs.String("mix", "mix1", "application mix: mix1, mix2, mix3, mix3x2, thermal")
	policy := fs.String("policy", "performance", "GPM policy: performance, equal, thermal, variation, mpc, cache")
	adaptive := fs.Bool("adaptive", false, "run the PICs with the adaptive-gain estimator (RLS plant-gain tracking, seeded from calibration)")
	budgets := fs.String("budgets", "0.5,0.6,0.7,0.8,0.9,0.95", "comma-separated budget fractions of required power")
	seed := fs.Uint64("seed", 1, "simulation seed (non-zero)")
	warm := fs.Int("warm", 6, "warm-up GPM epochs")
	epochs := fs.Int("epochs", 16, "measured GPM epochs")
	workers := fs.Int("workers", 0, "concurrent budget points (0 = GOMAXPROCS)")
	checked := fs.Bool("check", false, "attach the invariant-checking suite to every run")
	warmstart := fs.Bool("warmstart", false, "warm the chip once unmanaged, snapshot it, and fork every budget point from the snapshot (skips per-point warm-up; trajectories differ slightly from the default per-point managed warm-up)")
	scalar := fs.Bool("scalar", false, "run every point as an independent full simulation instead of a shared-sampler farm (slower; identical CSV)")
	farmSize := fs.Int("farm-size", 0, "max chips per farm sampler group; 0 = unlimited (one shared group per workload)")
	resilient := fs.Bool("resilient", false, "route points through the crash-safe sweepd coordinator: workers checkpoint at interval boundaries and killed or panicked workers migrate their point to a survivor (identical CSV)")
	killEvery := fs.Int("kill-every", 0, "inject a deterministic worker kill each time a point first completes an interval divisible by N (requires -resilient; 0 = off)")
	ckptEvery := fs.Int("ckpt-every", 0, "checkpoint cadence in intervals for -resilient workers (0 = every 20)")
	dflags := diag.AddFlags(fs)
	if err := fs.Parse(argv); err != nil {
		return sweepOptions{}, err
	}
	if *seed == 0 {
		return sweepOptions{}, fmt.Errorf("cpmsweep: -seed must be non-zero (0 is the unseeded sentinel)")
	}
	if *warm < 0 {
		return sweepOptions{}, fmt.Errorf("cpmsweep: -warm must be >= 0, got %d", *warm)
	}
	if *epochs <= 0 {
		return sweepOptions{}, fmt.Errorf("cpmsweep: -epochs must be > 0, got %d", *epochs)
	}
	if *workers < 0 {
		return sweepOptions{}, fmt.Errorf("cpmsweep: -workers must be >= 0, got %d", *workers)
	}
	if *farmSize < 0 {
		return sweepOptions{}, fmt.Errorf("cpmsweep: -farm-size must be >= 0, got %d", *farmSize)
	}
	if *killEvery < 0 {
		return sweepOptions{}, fmt.Errorf("cpmsweep: -kill-every must be >= 0, got %d", *killEvery)
	}
	if *ckptEvery < 0 {
		return sweepOptions{}, fmt.Errorf("cpmsweep: -ckpt-every must be >= 0, got %d", *ckptEvery)
	}
	if !*resilient && (*killEvery > 0 || *ckptEvery > 0) {
		return sweepOptions{}, fmt.Errorf("cpmsweep: -kill-every and -ckpt-every require -resilient")
	}
	if *resilient && *scalar {
		return sweepOptions{}, fmt.Errorf("cpmsweep: -resilient and -scalar are mutually exclusive (the resilient route already runs independent points)")
	}
	mix, err := workload.MixByName(*mixName)
	if err != nil {
		return sweepOptions{}, err
	}
	fracs, err := parseBudgets(*budgets)
	if err != nil {
		return sweepOptions{}, err
	}
	if _, err := makePolicy(*policy); err != nil { // validate the name before calibrating
		return sweepOptions{}, err
	}
	return sweepOptions{
		Mix:       mix,
		Policy:    *policy,
		Adaptive:  *adaptive,
		Fracs:     fracs,
		Seed:      *seed,
		Warm:      *warm,
		Epochs:    *epochs,
		Workers:   *workers,
		Parallel:  true,
		Check:     *checked,
		WarmStart: *warmstart,
		Scalar:    *scalar,
		FarmSize:  *farmSize,
		Resilient: *resilient,
		KillEvery: *killEvery,
		CkptEvery: *ckptEvery,
		Diag:      dflags,
	}, nil
}

func main() {
	o, err := parseSweepCLI(os.Args[1:], os.Stderr)
	exitOn(err)
	stopTrace, err := o.Diag.Start(os.Stderr)
	exitOn(err)
	o.Metrics = o.Diag.Registry()
	if err := sweep(o, os.Stdout, os.Stderr); err != nil {
		stopTrace()
		exitOn(err)
	}
	stopTrace()
	exitOn(o.Diag.WriteMetrics(o.Metrics, os.Stdout))
}

// sweepOptions parameterizes one sweep.
type sweepOptions struct {
	Mix    workload.Mix
	Policy string
	// Adaptive runs every CPM point's PICs with the adaptive-gain
	// estimator, seeded from the sweep's calibrated plant gain.
	Adaptive bool
	Fracs    []float64
	Seed     uint64
	Warm     int
	Epochs   int
	// Workers is the engine.Pool size (0 = GOMAXPROCS).
	Workers int
	// Parallel selects the simulator's island-parallel executor inside each
	// run. Pool-level and island-level parallelism compose; benchmarks
	// disable the inner level to isolate the pool's speedup.
	Parallel bool
	// Check attaches the invariant suite to every run; a violation fails
	// the sweep.
	Check bool
	// WarmStart warms one unmanaged chip per chip configuration, snapshots
	// it, and forks every budget point from the snapshot with a zero
	// warm-up window — the warm-up cost is paid once instead of once per
	// (budget, controller) pair. Off by default: the forked warm-up is
	// unmanaged, so the measured trajectories (and CSV) differ slightly
	// from the default per-point managed warm-up.
	WarmStart bool
	// Scalar disables the farm route: every point simulates independently
	// (the pre-farm behaviour). The CSV is identical either way; the farm
	// shares one trace sampler across all points of a sweep.
	Scalar bool
	// FarmSize caps the chips per farm sampler group (0 = unlimited).
	// Grouping changes scheduling only, never the CSV.
	FarmSize int
	// Resilient routes every point through the sweepd coordinator:
	// independent sessions checkpointed at interval boundaries, with dead
	// workers' points migrated to survivors. CSV is byte-identical to the
	// other routes.
	Resilient bool
	// KillEvery injects a deterministic worker kill each time a point
	// first completes an interval divisible by KillEvery (0 = off;
	// requires Resilient). Used to prove crash-equivalence.
	KillEvery int
	// CkptEvery is the resilient route's checkpoint cadence in intervals
	// (0 = every 20).
	CkptEvery int
	// Diag holds the shared diagnostics flags (-metrics, -pprof, -trace).
	Diag *diag.Flags
	// Metrics, when non-nil, attaches a telemetry observer to every run.
	// The registry is race-safe: budget points record into it concurrently
	// from the pool, and it may be scraped while the sweep runs.
	Metrics *metrics.Registry
}

// sweepRow is one budget point's measurements, in output order.
type sweepRow struct {
	frac, budgetW              float64
	oursPowerW, oursDegr       float64
	maxbipsPowerW, maxbipsDegr float64
}

// sweep calibrates once, runs every point — the shared unmanaged baseline
// plus a CPM and a MaxBIPS run per budget — through the farm route (or the
// legacy scalar route under -scalar), and emits CSV in budget order.
func sweep(o sweepOptions, out, logw io.Writer) error {
	cfg := sim.DefaultConfig(o.Mix)
	cfg.Seed = o.Seed
	cfg.Parallel = o.Parallel

	cal, err := core.Calibrate(cfg, 60, 240)
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "calibrated %s: unmanaged %.1f W, plant gain %.3f\n",
		o.Mix.Name, cal.UnmanagedPowerW, cal.PlantGain)

	var rows []sweepRow
	switch {
	case o.Resilient:
		rows, err = sweepResilient(cfg, cal, o, logw)
	case o.Scalar:
		rows, err = sweepScalar(cfg, cal, o, logw)
	default:
		rows, err = sweepFarm(cfg, cal, o, logw)
	}
	if err != nil {
		return err
	}

	fmt.Fprintln(out, "budget_frac,budget_w,ours_power_w,ours_degradation,maxbips_power_w,maxbips_degradation")
	for _, r := range rows {
		fmt.Fprintf(out, "%.2f,%.2f,%.2f,%.4f,%.2f,%.4f\n",
			r.frac, r.budgetW, r.oursPowerW, r.oursDegr, r.maxbipsPowerW, r.maxbipsDegr)
	}
	return nil
}

// sweepScalar is the legacy route: every point is an independent full
// simulation (own sampling), parallelized over the pool.
func sweepScalar(cfg sim.Config, cal core.Calibration, o sweepOptions, logw io.Writer) ([]sweepRow, error) {
	var warmManaged, warmBase []byte
	var err error
	if o.WarmStart {
		// One warm chip per chip configuration: the unmanaged baseline
		// runs at the top level (InitialLevel -1), the managed points at
		// the default initial level. Every budget point forks from the
		// matching snapshot instead of re-running its own warm-up.
		if warmManaged, err = warmChipSnapshot(cfg, o.Warm); err != nil {
			return nil, err
		}
		bcfg := cfg
		bcfg.InitialLevel = -1
		if warmBase, err = warmChipSnapshot(bcfg, o.Warm); err != nil {
			return nil, err
		}
		fmt.Fprintf(logw, "warm-started: %d warm epochs simulated once, forked across %d budget points\n",
			o.Warm, len(o.Fracs))
	}

	base, err := measureUnmanaged(cfg, o.Warm, o.Epochs, o.Check, o.Metrics, warmBase)
	if err != nil {
		return nil, err
	}
	return sweepRows(cfg, cal, base, o, warmManaged)
}

// sweepRows measures every budget point on an engine.Pool, returning rows
// in budget order regardless of worker count.
func sweepRows(cfg sim.Config, cal core.Calibration, base engine.Summary, o sweepOptions, warmState []byte) ([]sweepRow, error) {
	return engine.Map(engine.Pool{Workers: o.Workers}, len(o.Fracs), func(i int) (sweepRow, error) {
		frac := o.Fracs[i]
		budget := cal.BudgetW(frac)
		// Policies can be stateful (e.g. variation-aware), so each job
		// builds its own instance.
		pol, err := makePolicy(o.Policy)
		if err != nil {
			return sweepRow{}, err
		}
		ours, err := measureCPM(cfg, cal, budget, pol, o.Adaptive, o.Warm, o.Epochs, o.Check, o.Metrics, frac, warmState)
		if err != nil {
			return sweepRow{}, err
		}
		mb, err := measureMaxBIPS(cfg, budget, o.Warm, o.Epochs, o.Check, o.Metrics, frac, warmState)
		if err != nil {
			return sweepRow{}, err
		}
		return sweepRow{
			frac: frac, budgetW: budget,
			oursPowerW: ours.MeanPowerW, oursDegr: engine.Degradation(ours, base),
			maxbipsPowerW: mb.MeanPowerW, maxbipsDegr: engine.Degradation(mb, base),
		}, nil
	})
}

// warmChipSnapshot steps a fresh unmanaged chip through the warm-up window
// and returns its full-state snapshot, to be forked by every budget point.
func warmChipSnapshot(cfg sim.Config, warmEpochs int) ([]byte, error) {
	cmp, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	for k := 0; k < warmEpochs*20; k++ {
		cmp.Step()
	}
	e := snapshot.NewEncoder()
	if err := cmp.Snapshot(e); err != nil {
		return nil, err
	}
	return e.Bytes(), nil
}

// forkWarmChip builds a fresh chip and, when a warm snapshot is given,
// restores the shared warm state into it and zeroes the remaining warm-up.
// The snapshot bytes are only read, so concurrent budget points can fork
// from the same buffer.
func forkWarmChip(cfg sim.Config, warmState []byte, warm int) (*sim.CMP, int, error) {
	cmp, err := sim.New(cfg)
	if err != nil {
		return nil, 0, err
	}
	if warmState == nil {
		return cmp, warm, nil
	}
	if err := cmp.Restore(snapshot.NewDecoder(warmState)); err != nil {
		return nil, 0, fmt.Errorf("cpmsweep: forking warm chip: %w", err)
	}
	return cmp, 0, nil
}

// buildUnmanaged constructs the baseline point's stack without running it,
// so both the blocking route (measureUnmanaged) and the resilient
// coordinator route drive identical sessions.
func buildUnmanaged(cfg sim.Config, warm, epochs int, checked bool, reg *metrics.Registry, warmState []byte) (*engine.Session, *check.Suite, error) {
	cfg.InitialLevel = -1
	cmp, warm, err := forkWarmChip(cfg, warmState, warm)
	if err != nil {
		return nil, nil, err
	}
	var obs []engine.Observer
	var suite *check.Suite
	if checked {
		suite = check.All(check.ForChip(cmp, 0))
		obs = append(obs, suite)
	}
	if reg != nil {
		obs = append(obs, metrics.NewObserver(reg, metrics.ObserverOptions{Label: "unmanaged", Chip: cmp}))
	}
	s, err := engine.NewSession(engine.NewChipRunner(cmp), engine.SessionConfig{
		WarmEpochs: warm, MeasureEpochs: epochs, Label: "unmanaged",
	}, obs...)
	if err != nil {
		return nil, nil, err
	}
	return s, suite, nil
}

func measureUnmanaged(cfg sim.Config, warm, epochs int, checked bool, reg *metrics.Registry, warmState []byte) (engine.Summary, error) {
	s, suite, err := buildUnmanaged(cfg, warm, epochs, checked, reg, warmState)
	if err != nil {
		return engine.Summary{}, err
	}
	sum := s.Run()
	if suite != nil {
		if err := suite.Err(); err != nil {
			return sum, err
		}
	}
	return sum, nil
}

// buildCPM constructs one managed budget point's stack without running it.
func buildCPM(cfg sim.Config, cal core.Calibration, budget float64, pol gpm.Policy, adaptive bool, warm, epochs int, checked bool, reg *metrics.Registry, frac float64, warmState []byte) (*engine.Session, *check.Suite, error) {
	cmp, warm, err := forkWarmChip(cfg, warmState, warm)
	if err != nil {
		return nil, nil, err
	}
	c, err := core.New(cmp, core.Config{BudgetW: budget, Policy: pol, Transducers: cal.Transducers, Adaptive: adaptiveConfig(adaptive, cal)})
	if err != nil {
		return nil, nil, err
	}
	var obs []engine.Observer
	var suite *check.Suite
	if checked {
		suite = check.ForCPM(c, budget)
		obs = append(obs, suite)
	}
	if reg != nil {
		pics := make([]*pic.Controller, cmp.NumIslands())
		for i := range pics {
			pics[i] = c.PIC(i)
		}
		obs = append(obs, metrics.NewObserver(reg, metrics.ObserverOptions{
			Label: fmt.Sprintf("cpm-%.2f", frac), Chip: cmp, PICs: pics,
		}))
	}
	s, err := engine.NewSession(engine.NewCPMRunner(c), engine.SessionConfig{
		WarmEpochs: warm, MeasureEpochs: epochs, BudgetW: budget, Label: "cpm",
	}, obs...)
	if err != nil {
		return nil, nil, err
	}
	return s, suite, nil
}

func measureCPM(cfg sim.Config, cal core.Calibration, budget float64, pol gpm.Policy, adaptive bool, warm, epochs int, checked bool, reg *metrics.Registry, frac float64, warmState []byte) (engine.Summary, error) {
	s, suite, err := buildCPM(cfg, cal, budget, pol, adaptive, warm, epochs, checked, reg, frac, warmState)
	if err != nil {
		return engine.Summary{}, err
	}
	sum := s.Run()
	if suite != nil {
		if err := suite.Err(); err != nil {
			return sum, fmt.Errorf("budget %.2f W: %w", budget, err)
		}
	}
	return sum, nil
}

// buildMaxBIPS constructs one MaxBIPS budget point's stack without running it.
func buildMaxBIPS(cfg sim.Config, budget float64, warm, epochs int, checked bool, reg *metrics.Registry, frac float64, warmState []byte) (*engine.Session, *check.Suite, error) {
	cmp, warm, err := forkWarmChip(cfg, warmState, warm)
	if err != nil {
		return nil, nil, err
	}
	planner, err := engine.NewStaticPlanner(cmp)
	if err != nil {
		return nil, nil, err
	}
	r, err := engine.NewMaxBIPSRunner(cmp, planner, budget, 20)
	if err != nil {
		return nil, nil, err
	}
	var obs []engine.Observer
	var suite *check.Suite
	if checked {
		// Open-loop MaxBIPS overshoots realized power by design; widen the
		// budget tolerance to the paper's reported ~20% worst case.
		ccfg := check.ForChip(cmp, budget)
		ccfg.BudgetTolFrac = 0.25
		ccfg.IslandTolFrac = 0.25
		suite = check.All(ccfg)
		obs = append(obs, suite)
	}
	if reg != nil {
		obs = append(obs, metrics.NewObserver(reg, metrics.ObserverOptions{
			Label: fmt.Sprintf("maxbips-%.2f", frac), Chip: cmp,
		}))
	}
	s, err := engine.NewSession(r, engine.SessionConfig{
		WarmEpochs: warm, MeasureEpochs: epochs, BudgetW: budget, Label: "maxbips",
	}, obs...)
	if err != nil {
		return nil, nil, err
	}
	return s, suite, nil
}

func measureMaxBIPS(cfg sim.Config, budget float64, warm, epochs int, checked bool, reg *metrics.Registry, frac float64, warmState []byte) (engine.Summary, error) {
	s, suite, err := buildMaxBIPS(cfg, budget, warm, epochs, checked, reg, frac, warmState)
	if err != nil {
		return engine.Summary{}, err
	}
	sum := s.Run()
	if suite != nil {
		if err := suite.Err(); err != nil {
			return sum, fmt.Errorf("maxbips budget %.2f W: %w", budget, err)
		}
	}
	return sum, nil
}

// adaptiveConfig builds the per-run adaptive-gain configuration for
// -adaptive sweeps (nil when off), seeding the RLS estimator from the
// sweep's calibrated plant gain.
func adaptiveConfig(on bool, cal core.Calibration) *pic.AdaptiveConfig {
	if !on {
		return nil
	}
	return &pic.AdaptiveConfig{SeedGain: cal.PlantGain}
}

func makePolicy(name string) (gpm.Policy, error) {
	switch name {
	case "equal":
		return gpm.EqualShare{}, nil
	case "variation":
		return &gpm.VariationAware{StepFrac: 0.08, HoldIntervals: 1, MinShareFrac: 0.7}, nil
	case "thermal":
		fp, err := thermal.Grid(2, 4)
		if err != nil {
			return nil, err
		}
		return &gpm.ThermalAware{
			Base: &gpm.PerformanceAware{}, Floorplan: fp,
			AdjacentPairCap: 0.30, ConsecutiveLimit: 2,
			SoloCap: 0.20, SoloConsecutiveLimit: 4,
		}, nil
	case "performance":
		return &gpm.PerformanceAware{}, nil
	case "mpc":
		return &gpm.ModelPredictive{}, nil
	case "cache":
		return &gpm.CacheAware{}, nil
	default:
		return nil, fmt.Errorf("cpmsweep: unknown policy %q (want performance, equal, thermal, variation, mpc, cache)", name)
	}
}

func parseBudgets(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("cpmsweep: bad budget %q", part)
		}
		if v <= 0 || v > 1 {
			return nil, fmt.Errorf("cpmsweep: budget %v out of (0, 1]", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cpmsweep: no budgets")
	}
	return out, nil
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
