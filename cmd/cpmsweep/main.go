// Command cpmsweep runs managed-vs-baseline parameter sweeps and emits CSV,
// the workhorse behind custom variants of Figures 11–17.
//
// Usage:
//
//	cpmsweep -mix mix1 -budgets 0.5,0.6,0.7,0.8,0.9 -epochs 16
//	cpmsweep -mix mix3 -policy variation -budgets 0.8
//
// Columns: budget_frac, budget_w, ours_power_w, ours_degradation,
// maxbips_power_w, maxbips_degradation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/cpm-sim/cpm/internal/core"
	"github.com/cpm-sim/cpm/internal/gpm"
	"github.com/cpm-sim/cpm/internal/maxbips"
	"github.com/cpm-sim/cpm/internal/power"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/thermal"
	"github.com/cpm-sim/cpm/internal/workload"
)

func main() {
	mixName := flag.String("mix", "mix1", "application mix: mix1, mix2, mix3, mix3x2, thermal")
	policy := flag.String("policy", "performance", "GPM policy: performance, equal, thermal, variation")
	budgets := flag.String("budgets", "0.5,0.6,0.7,0.8,0.9,0.95", "comma-separated budget fractions of required power")
	seed := flag.Uint64("seed", 1, "simulation seed")
	warm := flag.Int("warm", 6, "warm-up GPM epochs")
	epochs := flag.Int("epochs", 16, "measured GPM epochs")
	flag.Parse()

	mix, err := workload.MixByName(*mixName)
	exitOn(err)
	fracs, err := parseBudgets(*budgets)
	exitOn(err)

	cfg := sim.DefaultConfig(mix)
	cfg.Seed = *seed
	cfg.Parallel = true

	cal, err := core.Calibrate(cfg, 60, 240)
	exitOn(err)
	fmt.Fprintf(os.Stderr, "calibrated %s: unmanaged %.1f W, plant gain %.3f\n",
		mix.Name, cal.UnmanagedPowerW, cal.PlantGain)

	base, err := measureUnmanaged(cfg, *warm, *epochs)
	exitOn(err)

	fmt.Println("budget_frac,budget_w,ours_power_w,ours_degradation,maxbips_power_w,maxbips_degradation")
	for _, frac := range fracs {
		budget := cal.BudgetW(frac)
		ours, err := measureCPM(cfg, cal, budget, makePolicy(*policy, mix), *warm, *epochs)
		exitOn(err)
		mb, err := measureMaxBIPS(cfg, budget, *warm, *epochs)
		exitOn(err)
		fmt.Printf("%.2f,%.2f,%.2f,%.4f,%.2f,%.4f\n",
			frac, budget,
			ours.power, degr(ours.instr, base.instr),
			mb.power, degr(mb.instr, base.instr))
	}
}

type meas struct {
	power float64
	instr float64
}

func measureUnmanaged(cfg sim.Config, warm, epochs int) (meas, error) {
	cfg.InitialLevel = -1
	cmp, err := sim.New(cfg)
	if err != nil {
		return meas{}, err
	}
	for k := 0; k < warm*20; k++ {
		cmp.Step()
	}
	var m meas
	n := epochs * 20
	for k := 0; k < n; k++ {
		r := cmp.Step()
		m.power += r.ChipPowerW
		for _, ir := range r.Islands {
			m.instr += ir.Instructions
		}
	}
	m.power /= float64(n)
	return m, nil
}

func measureCPM(cfg sim.Config, cal core.Calibration, budget float64, pol gpm.Policy, warm, epochs int) (meas, error) {
	cmp, err := sim.New(cfg)
	if err != nil {
		return meas{}, err
	}
	c, err := core.New(cmp, core.Config{BudgetW: budget, Policy: pol, Transducers: cal.Transducers})
	if err != nil {
		return meas{}, err
	}
	c.Run(warm * 20)
	var m meas
	n := epochs * 20
	for k := 0; k < n; k++ {
		r := c.Step()
		m.power += r.Sim.ChipPowerW
		for _, ir := range r.Sim.Islands {
			m.instr += ir.Instructions
		}
	}
	m.power /= float64(n)
	return m, nil
}

func measureMaxBIPS(cfg sim.Config, budget float64, warm, epochs int) (meas, error) {
	cmp, err := sim.New(cfg)
	if err != nil {
		return meas{}, err
	}
	planner, err := maxbips.New(cmp.Table())
	if err != nil {
		return meas{}, err
	}
	if err := planner.SetStaticTable(staticTable(cmp)); err != nil {
		return meas{}, err
	}
	nIsl := cmp.NumIslands()
	obs := make([]maxbips.IslandObs, nIsl)
	var m meas
	total := (warm + epochs) * 20
	for k := 0; k < total; k++ {
		if k%20 == 0 && k > 0 {
			for i := range obs {
				obs[i] = maxbips.IslandObs{Level: cmp.Level(i)}
			}
			for i, lvl := range planner.Choose(budget, obs) {
				cmp.SetLevel(i, lvl)
			}
		}
		r := cmp.Step()
		if k >= warm*20 {
			m.power += r.ChipPowerW
			for _, ir := range r.Islands {
				m.instr += ir.Instructions
			}
		}
	}
	m.power /= float64(epochs * 20)
	return m, nil
}

func staticTable(cmp *sim.CMP) [][]float64 {
	model := cmp.Model()
	levels := cmp.Table().Levels()
	out := make([][]float64, cmp.NumIslands())
	for i := range out {
		out[i] = make([]float64, levels)
		for l := 0; l < levels; l++ {
			op := cmp.Table().Point(l)
			core := 0.7*model.Dynamic.Power(op, power.FullActivity()) +
				model.Leakage.Power(op.VoltageV, model.Leakage.TRefC, 1)
			out[i][l] = core * float64(cmp.IslandCores(i))
		}
	}
	return out
}

func makePolicy(name string, mix workload.Mix) gpm.Policy {
	switch name {
	case "equal":
		return gpm.EqualShare{}
	case "variation":
		return &gpm.VariationAware{StepFrac: 0.08, HoldIntervals: 1, MinShareFrac: 0.7}
	case "thermal":
		fp, err := thermal.Grid(2, 4)
		exitOn(err)
		return &gpm.ThermalAware{
			Base: &gpm.PerformanceAware{}, Floorplan: fp,
			AdjacentPairCap: 0.30, ConsecutiveLimit: 2,
			SoloCap: 0.20, SoloConsecutiveLimit: 4,
		}
	default:
		return &gpm.PerformanceAware{}
	}
}

func parseBudgets(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("cpmsweep: bad budget %q", part)
		}
		if v <= 0 || v > 1 {
			return nil, fmt.Errorf("cpmsweep: budget %v out of (0, 1]", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cpmsweep: no budgets")
	}
	return out, nil
}

func degr(run, base float64) float64 {
	if base == 0 {
		return 0
	}
	d := 1 - run/base
	if d < 0 {
		return 0
	}
	return d
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
