package main

import (
	"fmt"
	"io"

	"github.com/cpm-sim/cpm/internal/check"
	"github.com/cpm-sim/cpm/internal/core"
	"github.com/cpm-sim/cpm/internal/engine"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/sweepd"
)

// sweepResilient is the crash-safe route: every point — the unmanaged
// baseline plus a CPM and a MaxBIPS run per budget, the same layout as the
// other routes — becomes a sweepd point driven by the coordinator. Workers
// checkpoint at interval boundaries; a killed (or panicked) worker's point
// migrates to a survivor and resumes from its latest checkpoint, and the
// CSV stays byte-identical to the scalar and farm routes at any worker
// count and under any kill schedule.
//
// Under -warmstart the warm chip snapshots become the roots of the
// checkpoint lineage tree: every budget point forks from a root, and its
// periodic checkpoints chain beneath it — the snapshot-tree generalization
// of the linear warm-start fork.
func sweepResilient(cfg sim.Config, cal core.Calibration, o sweepOptions, logw io.Writer) ([]sweepRow, error) {
	var warmManaged, warmBase []byte
	var err error
	tree := sweepd.NewTree()
	rootManaged, rootBase := -1, -1
	if o.WarmStart {
		if warmManaged, err = warmChipSnapshot(cfg, o.Warm); err != nil {
			return nil, err
		}
		bcfg := cfg
		bcfg.InitialLevel = -1
		if warmBase, err = warmChipSnapshot(bcfg, o.Warm); err != nil {
			return nil, err
		}
		if rootManaged, err = tree.Add(-1, "warm:managed", o.Warm*20, warmManaged); err != nil {
			return nil, err
		}
		if rootBase, err = tree.Add(-1, "warm:unmanaged", o.Warm*20, warmBase); err != nil {
			return nil, err
		}
		fmt.Fprintf(logw, "warm-started: %d warm epochs simulated once, forked across %d budget points\n",
			o.Warm, len(o.Fracs))
	}

	// Point layout: 0 = unmanaged baseline, then per budget a CPM and a
	// MaxBIPS point. Names carry the index so repeated fracs stay unique
	// (names are checkpoint fingerprints).
	nPts := 1 + 2*len(o.Fracs)
	pts := make([]sweepd.Point, nPts)
	base := make([]int, nPts)
	suites := make([]*check.Suite, nPts) // final incarnation per point
	wrap := func(i int, sess *engine.Session, suite *check.Suite) *sweepd.Instance {
		suites[i] = suite
		inst := &sweepd.Instance{Session: sess}
		if suite != nil {
			inst.Check = suite.Err
		}
		return inst
	}
	pts[0] = sweepd.Point{Name: "unmanaged", Build: func() (*sweepd.Instance, error) {
		sess, suite, err := buildUnmanaged(cfg, o.Warm, o.Epochs, o.Check, o.Metrics, warmBase)
		if err != nil {
			return nil, err
		}
		return wrap(0, sess, suite), nil
	}}
	base[0] = rootBase
	for pi, frac := range o.Fracs {
		pi, frac := pi, frac
		budget := cal.BudgetW(frac)
		idxCPM, idxMB := 1+2*pi, 2+2*pi
		pts[idxCPM] = sweepd.Point{
			Name: fmt.Sprintf("cpm-%d-%.2f", pi, frac),
			Build: func() (*sweepd.Instance, error) {
				// Policies can be stateful, so each incarnation builds its own.
				pol, err := makePolicy(o.Policy)
				if err != nil {
					return nil, err
				}
				sess, suite, err := buildCPM(cfg, cal, budget, pol, o.Adaptive, o.Warm, o.Epochs, o.Check, o.Metrics, frac, warmManaged)
				if err != nil {
					return nil, err
				}
				return wrap(idxCPM, sess, suite), nil
			},
		}
		pts[idxMB] = sweepd.Point{
			Name: fmt.Sprintf("maxbips-%d-%.2f", pi, frac),
			Build: func() (*sweepd.Instance, error) {
				sess, suite, err := buildMaxBIPS(cfg, budget, o.Warm, o.Epochs, o.Check, o.Metrics, frac, warmManaged)
				if err != nil {
					return nil, err
				}
				return wrap(idxMB, sess, suite), nil
			},
		}
		base[idxCPM], base[idxMB] = rootManaged, rootManaged
	}

	c, err := sweepd.New(pts, sweepd.Config{
		Workers:         o.Workers,
		CheckpointEvery: o.CkptEvery,
		KillEvery:       o.KillEvery,
		Metrics:         sweepd.NewInstruments(o.Metrics, o.Mix.Name),
		Log:             logw,
		Tree:            tree,
		TreeBase:        base,
	})
	if err != nil {
		return nil, err
	}
	sums, err := c.Run()
	st := c.Stats()
	fmt.Fprintf(logw, "resilient sweep: %d points, %d checkpoints (%d bytes total, %d max), %d kills, %d migrations (%d resumed from checkpoints)\n",
		nPts, st.Checkpoints, st.CheckpointBytes, st.MaxCheckpointBytes, st.Kills, st.Migrations, st.Restores)
	if err != nil {
		return nil, err
	}
	// The coordinator's boundary checks catch mid-run violations; this
	// final pass covers the tail intervals after the last boundary check,
	// with the same wrapping as the scalar route.
	for pi, frac := range o.Fracs {
		budget := cal.BudgetW(frac)
		if s := suites[1+2*pi]; s != nil {
			if err := s.Err(); err != nil {
				return nil, fmt.Errorf("budget %.2f W: %w", budget, err)
			}
		}
		if s := suites[2+2*pi]; s != nil {
			if err := s.Err(); err != nil {
				return nil, fmt.Errorf("maxbips budget %.2f W: %w", budget, err)
			}
		}
	}
	if s := suites[0]; s != nil {
		if err := s.Err(); err != nil {
			return nil, err
		}
	}

	rows := make([]sweepRow, len(o.Fracs))
	baseSum := sums[0]
	for pi, frac := range o.Fracs {
		ours, mb := sums[1+2*pi], sums[2+2*pi]
		rows[pi] = sweepRow{
			frac: frac, budgetW: cal.BudgetW(frac),
			oursPowerW: ours.MeanPowerW, oursDegr: engine.Degradation(ours, baseSum),
			maxbipsPowerW: mb.MeanPowerW, maxbipsDegr: engine.Degradation(mb, baseSum),
		}
	}
	return rows, nil
}
