// Command cpmtrace records and replays workload interval traces.
//
// A trace captures each core's frequency-independent interval behaviour
// (phase-scaled CPI, memory intensity, measured miss fractions), so a single
// recording can be replayed under any controller or DVFS trajectory —
// removing workload variance from comparisons and skipping the cache
// simulation.
//
// Usage:
//
//	cpmtrace record -mix mix1 -intervals 800 -o mix1.trace
//	cpmtrace replay -mix mix1 -i mix1.trace -budget 0.8
//	cpmtrace info   -i mix1.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/cpm-sim/cpm/internal/core"
	"github.com/cpm-sim/cpm/internal/engine"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/trace"
	"github.com/cpm-sim/cpm/internal/uarch"
	"github.com/cpm-sim/cpm/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "record":
		err = record(args)
	case "replay":
		err = replay(args)
	case "info":
		err = info(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cpmtrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  cpmtrace record -mix NAME -intervals N -o FILE [-seed N]
  cpmtrace replay -mix NAME -i FILE -budget FRAC [-epochs N]
  cpmtrace info   -i FILE`)
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	mixName := fs.String("mix", "mix1", "application mix")
	intervals := fs.Int("intervals", 800, "intervals to record (2.5 ms each)")
	out := fs.String("o", "", "output file")
	seed := fs.Uint64("seed", 1, "workload seed")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("record: -o is required")
	}
	mix, err := workload.MixByName(*mixName)
	if err != nil {
		return err
	}
	cfg := sim.DefaultConfig(mix)
	cfg.Seed = *seed
	cfg.Parallel = true
	cfg.RecordTraces = true
	cmp, err := sim.New(cfg)
	if err != nil {
		return err
	}
	for k := 0; k < *intervals; k++ {
		cmp.Step()
	}
	set, err := cmp.Traces()
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := uarch.SaveTraces(f, set); err != nil {
		return err
	}
	fmt.Printf("recorded %d intervals x %d cores of %s to %s\n", *intervals, len(set.Records), mix.Name, *out)
	return f.Close()
}

func load(path string) (uarch.TraceSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return uarch.TraceSet{}, err
	}
	defer f.Close()
	return uarch.LoadTraces(f)
}

func replay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	mixName := fs.String("mix", "mix1", "application mix the trace was recorded from")
	in := fs.String("i", "", "trace file")
	budget := fs.Float64("budget", 0.8, "budget fraction of required power")
	epochs := fs.Int("epochs", 16, "measured GPM epochs")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("replay: -i is required")
	}
	mix, err := workload.MixByName(*mixName)
	if err != nil {
		return err
	}
	set, err := load(*in)
	if err != nil {
		return err
	}
	cfg := sim.DefaultConfig(mix)
	cfg.Parallel = true
	cal, err := core.Calibrate(cfg, 60, 240)
	if err != nil {
		return err
	}
	cfg.Replay = &set
	cmp, err := sim.New(cfg)
	if err != nil {
		return err
	}
	c, err := core.New(cmp, core.Config{BudgetW: cal.BudgetW(*budget), Transducers: cal.Transducers})
	if err != nil {
		return err
	}
	rec := trace.NewRecorder("GPM epoch")
	s, err := engine.NewSession(engine.NewCPMRunner(c), engine.SessionConfig{
		WarmEpochs: 6, MeasureEpochs: *epochs, BudgetW: cal.BudgetW(*budget), Label: "replay",
	}, rec)
	if err != nil {
		return err
	}
	sum := s.Run()
	fmt.Printf("replayed %s under CPM at %.1f W (%.0f%%): mean %.1f W, %.2f BIPS\n",
		*in, cal.BudgetW(*budget), *budget*100, sum.MeanPowerW, sum.MeanBIPS)
	fmt.Print(rec.Set().Chart(70, 12))
	return nil
}

func info(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("i", "", "trace file")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("info: -i is required")
	}
	set, err := load(*in)
	if err != nil {
		return err
	}
	fmt.Printf("%d cores\n", len(set.Records))
	for id := 0; id < len(set.Records); id++ {
		recs, ok := set.Records[id]
		if !ok {
			continue
		}
		var memSum float64
		for _, r := range recs {
			memSum += r.MemRefs * r.PDataMem
		}
		fmt.Printf("  core %2d: %-8s %5d intervals, avg %.4f memory misses/instr\n",
			id, set.Benchmarks[id], len(recs), memSum/float64(len(recs)))
	}
	return nil
}
