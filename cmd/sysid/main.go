// Command sysid performs the offline system identification of §II-D for a
// chosen application mix: it measures the chip's unmanaged power demand,
// fits per-island utilization→power transducers (Figure 6) and the plant
// gain a of the difference model P(t+1) = P(t) + a·d(t) (Equation 8), and
// verifies that the paper's PID gains remain stable for the identified gain.
//
// Usage:
//
//	sysid [-mix mix1|mix2|mix3|thermal] [-seed N] [-windows N]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/cpm-sim/cpm/internal/control"
	"github.com/cpm-sim/cpm/internal/core"
	"github.com/cpm-sim/cpm/internal/sensor"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/trace"
	"github.com/cpm-sim/cpm/internal/workload"
)

func main() {
	mixName := flag.String("mix", "mix1", "application mix: mix1, mix2, mix3, mix3x2, thermal")
	seed := flag.Uint64("seed", 1, "simulation seed")
	measure := flag.Int("measure", 240, "measurement intervals per phase")
	flag.Parse()

	mix, err := workload.MixByName(*mixName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := sim.DefaultConfig(mix)
	cfg.Seed = *seed
	cfg.Parallel = true

	cal, err := core.Calibrate(cfg, 60, *measure)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sysid:", err)
		os.Exit(1)
	}

	fmt.Printf("System identification for %s (seed %d)\n\n", mix.Name, *seed)
	fmt.Printf("Unmanaged chip demand : %.1f W (the 'required power' §IV budgets are fractions of)\n", cal.UnmanagedPowerW)
	fmt.Printf("Unmanaged throughput  : %.2f BIPS\n", cal.UnmanagedBIPS)
	fmt.Printf("Plant gain a          : %.3f island-power-fraction per normalized-frequency step (paper: 0.79)\n\n", cal.PlantGain)

	var rows [][]string
	for i, lin := range cal.LinearTransducers {
		lt := cal.Transducers[i].(sensor.LevelTransducer)
		rows = append(rows, []string{
			fmt.Sprint(i + 1),
			fmt.Sprintf("P = %.3f·U %+.3f", lin.K0, lin.K1),
			fmt.Sprintf("%.3f", cal.R2[i]),
			fmt.Sprintf("%.3f", lt.Slope),
			fmt.Sprintf("%.3f", cal.LevelR2[i]),
		})
	}
	fmt.Println(trace.Table(
		[]string{"Island", "Linear transducer", "R^2", "Level-aware slope", "R^2"}, rows))

	an, err := control.Analyze(cal.PlantGain, control.PaperGains)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sysid: controller analysis:", err)
		os.Exit(1)
	}
	fmt.Printf("\nPID (K_P, K_I, K_D) = (%.2f, %.2f, %.2f) on the identified plant:\n",
		control.PaperGains.KP, control.PaperGains.KI, control.PaperGains.KD)
	fmt.Printf("  closed-loop poles   : %v\n", an.Poles)
	fmt.Printf("  spectral radius     : %.4f (stable: %v)\n", an.SpectralRadius, an.Stable)
	gmax, err := control.MaxStableGainScale(cal.PlantGain, control.PaperGains, 1e-4)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sysid:", err)
		os.Exit(1)
	}
	fmt.Printf("  stable for gain drift 0 < g < %.3f (paper, at a=0.79: 2.1)\n", gmax)
}
