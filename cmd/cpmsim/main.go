// Command cpmsim regenerates the paper's tables and figures on the
// simulated CMP.
//
// Usage:
//
//	cpmsim list                 # list every reproducible artefact
//	cpmsim run fig11 fig12      # run specific experiments
//	cpmsim run all              # run everything (Tables I-III, Figures 5-19)
//	cpmsim tables               # shorthand for the three tables
//	cpmsim scenario cpm-default # replay a canonical golden scenario
//	cpmsim checkpoint cpm-default        # snapshot a scenario mid-run
//	cpmsim -resume f.ckpt scenario NAME  # continue it bit-identically
//
// Flags:
//
//	-quick        shortened horizons (same shapes, faster)
//	-seed N       experiment seed (default 1, must be non-zero)
//	-check        attach the invariant suite to every run (internal/check);
//	              any violation fails the experiment
//	-csv DIR      also write every series as CSV files into DIR
//	-workers N    run experiments concurrently (0 = GOMAXPROCS); reports
//	              are buffered per experiment and printed in request order
//	-metrics F    export run telemetry to F after the run ("-" = stdout,
//	              .json = JSON, anything else Prometheus text format)
//	-pprof ADDR   serve net/http/pprof on ADDR for the life of the process
//	-trace F      write a runtime/trace capture to F
//	-resume F     (scenario) restore the run from checkpoint F and finish it
//	-o F          (checkpoint) output path (default <scenario>.ckpt)
//	-at N         (checkpoint) snapshot after N intervals (default: end of
//	              warmup)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/cpm-sim/cpm/internal/check"
	"github.com/cpm-sim/cpm/internal/diag"
	"github.com/cpm-sim/cpm/internal/engine"
	"github.com/cpm-sim/cpm/internal/experiments"
	"github.com/cpm-sim/cpm/internal/metrics"
	"github.com/cpm-sim/cpm/internal/snapshot"
	"github.com/cpm-sim/cpm/internal/trace"
)

// cliConfig is the parsed, validated command line.
type cliConfig struct {
	opts    experiments.Options
	csvDir  string
	workers int
	cmd     string
	ids     []string
	diag    *diag.Flags
	resume  string // scenario: checkpoint file to restore before running
	ckptOut string // checkpoint: output path
	ckptAt  int    // checkpoint: intervals to run before snapshotting
}

// parseCLI parses and validates argv (without the program name). It is the
// testable core of main: every reject path returns an error instead of
// exiting.
func parseCLI(argv []string, stderr io.Writer) (cliConfig, error) {
	fs := flag.NewFlagSet("cpmsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "run shortened horizons")
	seed := fs.Uint64("seed", 1, "experiment seed (non-zero)")
	checked := fs.Bool("check", false, "attach the invariant-checking suite to every run")
	csvDir := fs.String("csv", "", "directory to write CSV series into")
	workers := fs.Int("workers", 1, "concurrent experiments (0 = GOMAXPROCS)")
	resume := fs.String("resume", "", "scenario: checkpoint file to restore before running")
	ckptOut := fs.String("o", "", "checkpoint: output path (default <scenario>.ckpt)")
	ckptAt := fs.Int("at", 0, "checkpoint: intervals to run before snapshotting (default: end of warmup)")
	dflags := diag.AddFlags(fs)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: cpmsim [flags] list | tables | run <id>...|all | scenario <name>...|all | checkpoint <name>\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return cliConfig{}, err
	}
	if *seed == 0 {
		return cliConfig{}, fmt.Errorf("cpmsim: -seed must be non-zero (0 is the unseeded sentinel)")
	}
	if *workers < 0 {
		return cliConfig{}, fmt.Errorf("cpmsim: -workers must be >= 0, got %d", *workers)
	}
	args := fs.Args()
	if len(args) == 0 {
		fs.Usage()
		return cliConfig{}, fmt.Errorf("cpmsim: need a command")
	}
	c := cliConfig{
		opts:    experiments.Options{Quick: *quick, Seed: *seed, Check: *checked},
		csvDir:  *csvDir,
		workers: *workers,
		cmd:     args[0],
		diag:    dflags,
		resume:  *resume,
		ckptOut: *ckptOut,
		ckptAt:  *ckptAt,
	}
	switch args[0] {
	case "list":
	case "tables":
		c.ids = []string{"table1", "table2", "table3"}
	case "run":
		c.ids = args[1:]
		if len(c.ids) == 0 {
			return cliConfig{}, fmt.Errorf("cpmsim run: need experiment IDs or 'all'")
		}
		if len(c.ids) == 1 && c.ids[0] == "all" {
			c.ids = nil
			for _, d := range experiments.All() {
				c.ids = append(c.ids, d.ID)
			}
		}
	case "scenario":
		c.ids = args[1:]
		if len(c.ids) == 0 {
			return cliConfig{}, fmt.Errorf("cpmsim scenario: need scenario names or 'all' (see check.Canonical)")
		}
		if len(c.ids) == 1 && c.ids[0] == "all" {
			c.ids = nil
			for _, sc := range check.Canonical() {
				c.ids = append(c.ids, sc.Name)
			}
		} else {
			for _, name := range c.ids {
				if _, err := scenarioByName(name); err != nil {
					return cliConfig{}, err
				}
			}
		}
		if c.resume != "" && len(c.ids) != 1 {
			return cliConfig{}, fmt.Errorf("cpmsim scenario: -resume takes exactly one scenario name")
		}
	case "checkpoint":
		c.ids = args[1:]
		if len(c.ids) != 1 {
			return cliConfig{}, fmt.Errorf("cpmsim checkpoint: need exactly one scenario name (see check.Canonical)")
		}
		if _, err := scenarioByName(c.ids[0]); err != nil {
			return cliConfig{}, err
		}
		if c.ckptAt < 0 {
			return cliConfig{}, fmt.Errorf("cpmsim checkpoint: -at must be >= 0, got %d", c.ckptAt)
		}
		if c.ckptOut == "" {
			c.ckptOut = c.ids[0] + ".ckpt"
		}
	default:
		fs.Usage()
		return cliConfig{}, fmt.Errorf("cpmsim: unknown command %q", args[0])
	}
	return c, nil
}

func main() {
	c, err := parseCLI(os.Args[1:], os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	stopTrace, err := c.diag.Start(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer stopTrace()
	c.opts.Metrics = c.diag.Registry()
	switch c.cmd {
	case "list":
		listExperiments()
		return
	case "scenario":
		if err := runScenarios(c, os.Stdout); err != nil {
			stopTrace()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case "checkpoint":
		if err := runCheckpoint(c, os.Stdout); err != nil {
			stopTrace()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		if !runIDs(c.ids, c.opts, c.csvDir, c.workers) {
			stopTrace()
			os.Exit(1)
		}
	}
	if err := c.diag.WriteMetrics(c.opts.Metrics, os.Stdout); err != nil {
		stopTrace()
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// scenarioByName resolves a canonical golden scenario.
func scenarioByName(name string) (check.Scenario, error) {
	sc, err := check.ScenarioByName(name)
	if err != nil {
		return check.Scenario{}, fmt.Errorf("cpmsim scenario: %w", err)
	}
	return sc, nil
}

// runScenarios replays canonical golden scenarios under the invariant
// suite, attaching the telemetry observer when -metrics is given — the
// scenario-level entry point CI uses to capture the cpm-default telemetry
// artifact.
func runScenarios(c cliConfig, out io.Writer) error {
	for _, name := range c.ids {
		sc, err := scenarioByName(name)
		if err != nil {
			return err
		}
		var extra []engine.Observer
		if c.opts.Metrics != nil {
			extra = append(extra, metrics.NewObserver(c.opts.Metrics, metrics.ObserverOptions{Label: sc.Name}))
		}
		sess, suite, err := sc.Build(c.opts.Seed, extra...)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", name, err)
		}
		resumed := ""
		if c.resume != "" {
			if err := restoreSession(sess, c.resume, name, c.opts.Seed); err != nil {
				return err
			}
			resumed = " (resumed)"
		}
		sum := sess.Run()
		if err := suite.Err(); err != nil {
			return fmt.Errorf("scenario %s violated invariants:\n%w", name, err)
		}
		fmt.Fprintf(out, "scenario %-16s mean power %7.2f W, %6.3f BIPS, peak %5.1f C%s\n",
			name, sum.MeanPowerW, sum.MeanBIPS, sum.MaxTempC, resumed)
	}
	return nil
}

// checkpointKind tags cpmsim session checkpoints; the fingerprint binds a
// file to its (scenario, seed) so a resume into the wrong stack fails at
// the header, before any state is decoded.
const checkpointKind = "cpmsim-session"

func checkpointFingerprint(name string, seed uint64) string {
	return fmt.Sprintf("%s/seed=%d", name, seed)
}

// defaultCheckpointAt resolves the checkpoint boundary when -at is not
// given: the end of warmup, or — for runs with no warm-up intervals, where
// that default would be 0 and fail the range check even though the user
// passed nothing — the run's midpoint.
func defaultCheckpointAt(warmIntervals, totalIntervals int) int {
	if warmIntervals > 0 {
		return warmIntervals
	}
	return totalIntervals / 2
}

// runCheckpoint builds a canonical scenario, advances it -at intervals
// (defaulting to the end of warmup, or the midpoint of a zero-warmup run)
// and writes the full-state snapshot.
func runCheckpoint(c cliConfig, out io.Writer) error {
	name := c.ids[0]
	sc, err := scenarioByName(name)
	if err != nil {
		return err
	}
	sess, _, err := sc.Build(c.opts.Seed)
	if err != nil {
		return fmt.Errorf("scenario %s: %w", name, err)
	}
	info := sess.Info()
	total := info.WarmIntervals + info.MeasureIntervals
	at := c.ckptAt
	if at == 0 {
		at = defaultCheckpointAt(info.WarmIntervals, total)
	}
	if at <= 0 || at >= total {
		return fmt.Errorf("cpmsim checkpoint: -at %d outside the run's (0, %d) interval range", at, total)
	}
	if got := sess.RunIntervals(at); got != at {
		return fmt.Errorf("cpmsim checkpoint: ran %d of %d intervals", got, at)
	}
	e := snapshot.NewEncoder()
	e.Header(snapshot.Header{Kind: checkpointKind, Fingerprint: checkpointFingerprint(name, c.opts.Seed)})
	if err := sess.Snapshot(e); err != nil {
		return err
	}
	if err := os.WriteFile(c.ckptOut, e.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "checkpoint %s at interval %d/%d -> %s (%d bytes)\n", name, at, total, c.ckptOut, e.Len())
	return nil
}

// restoreSession loads a checkpoint file into a freshly built session,
// validating the header against the scenario and seed being resumed.
func restoreSession(sess *engine.Session, path, name string, seed uint64) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	d := snapshot.NewDecoder(b)
	h, err := d.Header()
	if err != nil {
		return fmt.Errorf("cpmsim: reading %s: %w", path, err)
	}
	if h.Kind != checkpointKind {
		return fmt.Errorf("cpmsim: %s holds a %q snapshot, want %q", path, h.Kind, checkpointKind)
	}
	if want := checkpointFingerprint(name, seed); h.Fingerprint != want {
		return fmt.Errorf("cpmsim: checkpoint %s was taken for %s, resuming %s", path, h.Fingerprint, want)
	}
	if err := sess.Restore(d); err != nil {
		return fmt.Errorf("cpmsim: restoring %s: %w", path, err)
	}
	if rem := d.Remaining(); rem != 0 {
		return fmt.Errorf("cpmsim: %d trailing bytes in %s", rem, path)
	}
	return nil
}

func listExperiments() {
	var rows [][]string
	for _, d := range experiments.All() {
		rows = append(rows, []string{d.ID, d.Title})
	}
	fmt.Print(trace.Table([]string{"ID", "Reproduces"}, rows))
}

// runReport is one experiment's buffered output, assembled off the main
// goroutine so pooled runs can't interleave reports.
type runReport struct {
	text string
	errs []string
}

func runIDs(ids []string, opts experiments.Options, csvDir string, workers int) bool {
	reports, _ := engine.Map(engine.Pool{Workers: workers}, len(ids), func(i int) (runReport, error) {
		r := runOne(ids[i], opts, csvDir)
		if len(r.errs) == 0 {
			fmt.Fprintf(os.Stderr, "done %s\n", ids[i])
		}
		return r, nil
	})
	ok := true
	for _, r := range reports {
		os.Stdout.WriteString(r.text)
		for _, e := range r.errs {
			fmt.Fprintln(os.Stderr, e)
			ok = false
		}
	}
	return ok
}

func runOne(id string, opts experiments.Options, csvDir string) (rep runReport) {
	var b strings.Builder
	defer func() { rep.text = b.String() }()
	d, err := experiments.ByID(id)
	if err != nil {
		rep.errs = append(rep.errs, err.Error())
		return rep
	}
	fmt.Fprintf(&b, "=== %s — %s ===\n", d.ID, d.Title)
	fmt.Fprintf(&b, "Paper: %s\n\n", d.Paper)
	r, err := d.Run(opts)
	if err != nil {
		rep.errs = append(rep.errs, fmt.Sprintf("%s: %v", id, err))
		return rep
	}
	fmt.Fprintln(&b, r.Text)
	if len(r.Metrics) > 0 {
		var rows [][]string
		for _, k := range trace.SortedKeys(r.Metrics) {
			rows = append(rows, []string{k, fmt.Sprintf("%.4g", r.Metrics[k])})
		}
		fmt.Fprintln(&b, trace.Table([]string{"Metric", "Value"}, rows))
	}
	if csvDir != "" {
		if err := writeCSVs(csvDir, r); err != nil {
			rep.errs = append(rep.errs, fmt.Sprintf("%s: writing CSV: %v", id, err))
		}
	}
	return rep
}

func writeCSVs(dir string, r experiments.Result) error {
	if len(r.Sets) == 0 {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range trace.SortedKeys(r.Sets) {
		clean := strings.ReplaceAll(name, string(filepath.Separator), "-")
		f, err := os.Create(filepath.Join(dir, clean+".csv"))
		if err != nil {
			return err
		}
		if err := r.Sets[name].WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
