// Command cpmsim regenerates the paper's tables and figures on the
// simulated CMP.
//
// Usage:
//
//	cpmsim list                 # list every reproducible artefact
//	cpmsim run fig11 fig12      # run specific experiments
//	cpmsim run all              # run everything (Tables I-III, Figures 5-19)
//	cpmsim tables               # shorthand for the three tables
//	cpmsim scenario cpm-default # replay a canonical golden scenario
//
// Flags:
//
//	-quick        shortened horizons (same shapes, faster)
//	-seed N       experiment seed (default 1, must be non-zero)
//	-check        attach the invariant suite to every run (internal/check);
//	              any violation fails the experiment
//	-csv DIR      also write every series as CSV files into DIR
//	-workers N    run experiments concurrently (0 = GOMAXPROCS); reports
//	              are buffered per experiment and printed in request order
//	-metrics F    export run telemetry to F after the run ("-" = stdout,
//	              .json = JSON, anything else Prometheus text format)
//	-pprof ADDR   serve net/http/pprof on ADDR for the life of the process
//	-trace F      write a runtime/trace capture to F
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/cpm-sim/cpm/internal/check"
	"github.com/cpm-sim/cpm/internal/diag"
	"github.com/cpm-sim/cpm/internal/engine"
	"github.com/cpm-sim/cpm/internal/experiments"
	"github.com/cpm-sim/cpm/internal/metrics"
	"github.com/cpm-sim/cpm/internal/trace"
)

// cliConfig is the parsed, validated command line.
type cliConfig struct {
	opts    experiments.Options
	csvDir  string
	workers int
	cmd     string
	ids     []string
	diag    *diag.Flags
}

// parseCLI parses and validates argv (without the program name). It is the
// testable core of main: every reject path returns an error instead of
// exiting.
func parseCLI(argv []string, stderr io.Writer) (cliConfig, error) {
	fs := flag.NewFlagSet("cpmsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "run shortened horizons")
	seed := fs.Uint64("seed", 1, "experiment seed (non-zero)")
	checked := fs.Bool("check", false, "attach the invariant-checking suite to every run")
	csvDir := fs.String("csv", "", "directory to write CSV series into")
	workers := fs.Int("workers", 1, "concurrent experiments (0 = GOMAXPROCS)")
	dflags := diag.AddFlags(fs)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: cpmsim [flags] list | tables | run <id>...|all | scenario <name>...|all\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return cliConfig{}, err
	}
	if *seed == 0 {
		return cliConfig{}, fmt.Errorf("cpmsim: -seed must be non-zero (0 is the unseeded sentinel)")
	}
	if *workers < 0 {
		return cliConfig{}, fmt.Errorf("cpmsim: -workers must be >= 0, got %d", *workers)
	}
	args := fs.Args()
	if len(args) == 0 {
		fs.Usage()
		return cliConfig{}, fmt.Errorf("cpmsim: need a command")
	}
	c := cliConfig{
		opts:    experiments.Options{Quick: *quick, Seed: *seed, Check: *checked},
		csvDir:  *csvDir,
		workers: *workers,
		cmd:     args[0],
		diag:    dflags,
	}
	switch args[0] {
	case "list":
	case "tables":
		c.ids = []string{"table1", "table2", "table3"}
	case "run":
		c.ids = args[1:]
		if len(c.ids) == 0 {
			return cliConfig{}, fmt.Errorf("cpmsim run: need experiment IDs or 'all'")
		}
		if len(c.ids) == 1 && c.ids[0] == "all" {
			c.ids = nil
			for _, d := range experiments.All() {
				c.ids = append(c.ids, d.ID)
			}
		}
	case "scenario":
		c.ids = args[1:]
		if len(c.ids) == 0 {
			return cliConfig{}, fmt.Errorf("cpmsim scenario: need scenario names or 'all' (see check.Canonical)")
		}
		if len(c.ids) == 1 && c.ids[0] == "all" {
			c.ids = nil
			for _, sc := range check.Canonical() {
				c.ids = append(c.ids, sc.Name)
			}
		} else {
			for _, name := range c.ids {
				if _, err := scenarioByName(name); err != nil {
					return cliConfig{}, err
				}
			}
		}
	default:
		fs.Usage()
		return cliConfig{}, fmt.Errorf("cpmsim: unknown command %q", args[0])
	}
	return c, nil
}

func main() {
	c, err := parseCLI(os.Args[1:], os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	stopTrace, err := c.diag.Start(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer stopTrace()
	c.opts.Metrics = c.diag.Registry()
	switch c.cmd {
	case "list":
		listExperiments()
		return
	case "scenario":
		if err := runScenarios(c, os.Stdout); err != nil {
			stopTrace()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		if !runIDs(c.ids, c.opts, c.csvDir, c.workers) {
			stopTrace()
			os.Exit(1)
		}
	}
	if err := c.diag.WriteMetrics(c.opts.Metrics, os.Stdout); err != nil {
		stopTrace()
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// scenarioByName resolves a canonical golden scenario.
func scenarioByName(name string) (check.Scenario, error) {
	for _, sc := range check.Canonical() {
		if sc.Name == name {
			return sc, nil
		}
	}
	var names []string
	for _, sc := range check.Canonical() {
		names = append(names, sc.Name)
	}
	return check.Scenario{}, fmt.Errorf("cpmsim scenario: unknown scenario %q (have %s)", name, strings.Join(names, ", "))
}

// runScenarios replays canonical golden scenarios under the invariant
// suite, attaching the telemetry observer when -metrics is given — the
// scenario-level entry point CI uses to capture the cpm-default telemetry
// artifact.
func runScenarios(c cliConfig, out io.Writer) error {
	for _, name := range c.ids {
		sc, err := scenarioByName(name)
		if err != nil {
			return err
		}
		var extra []engine.Observer
		if c.opts.Metrics != nil {
			extra = append(extra, metrics.NewObserver(c.opts.Metrics, metrics.ObserverOptions{Label: sc.Name}))
		}
		sum, suite, err := sc.Run(c.opts.Seed, extra...)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", name, err)
		}
		if err := suite.Err(); err != nil {
			return fmt.Errorf("scenario %s violated invariants:\n%w", name, err)
		}
		fmt.Fprintf(out, "scenario %-16s mean power %7.2f W, %6.3f BIPS, peak %5.1f C\n",
			name, sum.MeanPowerW, sum.MeanBIPS, sum.MaxTempC)
	}
	return nil
}

func listExperiments() {
	var rows [][]string
	for _, d := range experiments.All() {
		rows = append(rows, []string{d.ID, d.Title})
	}
	fmt.Print(trace.Table([]string{"ID", "Reproduces"}, rows))
}

// runReport is one experiment's buffered output, assembled off the main
// goroutine so pooled runs can't interleave reports.
type runReport struct {
	text string
	errs []string
}

func runIDs(ids []string, opts experiments.Options, csvDir string, workers int) bool {
	reports, _ := engine.Map(engine.Pool{Workers: workers}, len(ids), func(i int) (runReport, error) {
		r := runOne(ids[i], opts, csvDir)
		if len(r.errs) == 0 {
			fmt.Fprintf(os.Stderr, "done %s\n", ids[i])
		}
		return r, nil
	})
	ok := true
	for _, r := range reports {
		os.Stdout.WriteString(r.text)
		for _, e := range r.errs {
			fmt.Fprintln(os.Stderr, e)
			ok = false
		}
	}
	return ok
}

func runOne(id string, opts experiments.Options, csvDir string) (rep runReport) {
	var b strings.Builder
	defer func() { rep.text = b.String() }()
	d, err := experiments.ByID(id)
	if err != nil {
		rep.errs = append(rep.errs, err.Error())
		return rep
	}
	fmt.Fprintf(&b, "=== %s — %s ===\n", d.ID, d.Title)
	fmt.Fprintf(&b, "Paper: %s\n\n", d.Paper)
	r, err := d.Run(opts)
	if err != nil {
		rep.errs = append(rep.errs, fmt.Sprintf("%s: %v", id, err))
		return rep
	}
	fmt.Fprintln(&b, r.Text)
	if len(r.Metrics) > 0 {
		var rows [][]string
		for _, k := range trace.SortedKeys(r.Metrics) {
			rows = append(rows, []string{k, fmt.Sprintf("%.4g", r.Metrics[k])})
		}
		fmt.Fprintln(&b, trace.Table([]string{"Metric", "Value"}, rows))
	}
	if csvDir != "" {
		if err := writeCSVs(csvDir, r); err != nil {
			rep.errs = append(rep.errs, fmt.Sprintf("%s: writing CSV: %v", id, err))
		}
	}
	return rep
}

func writeCSVs(dir string, r experiments.Result) error {
	if len(r.Sets) == 0 {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range trace.SortedKeys(r.Sets) {
		clean := strings.ReplaceAll(name, string(filepath.Separator), "-")
		f, err := os.Create(filepath.Join(dir, clean+".csv"))
		if err != nil {
			return err
		}
		if err := r.Sets[name].WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
