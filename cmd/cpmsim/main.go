// Command cpmsim regenerates the paper's tables and figures on the
// simulated CMP.
//
// Usage:
//
//	cpmsim list                 # list every reproducible artefact
//	cpmsim run fig11 fig12      # run specific experiments
//	cpmsim run all              # run everything (Tables I-III, Figures 5-19)
//	cpmsim tables               # shorthand for the three tables
//
// Flags:
//
//	-quick        shortened horizons (same shapes, faster)
//	-seed N       experiment seed (default 1)
//	-csv DIR      also write every series as CSV files into DIR
//	-workers N    run experiments concurrently (0 = GOMAXPROCS); reports
//	              are buffered per experiment and printed in request order
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/cpm-sim/cpm/internal/engine"
	"github.com/cpm-sim/cpm/internal/experiments"
	"github.com/cpm-sim/cpm/internal/trace"
)

func main() {
	quick := flag.Bool("quick", false, "run shortened horizons")
	seed := flag.Uint64("seed", 1, "experiment seed")
	csvDir := flag.String("csv", "", "directory to write CSV series into")
	workers := flag.Int("workers", 1, "concurrent experiments (0 = GOMAXPROCS)")
	flag.Usage = usage
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	switch args[0] {
	case "list":
		listExperiments()
	case "tables":
		runIDs([]string{"table1", "table2", "table3"}, *quick, *seed, *csvDir, *workers)
	case "run":
		ids := args[1:]
		if len(ids) == 0 {
			fmt.Fprintln(os.Stderr, "cpmsim run: need experiment IDs or 'all'")
			os.Exit(2)
		}
		if len(ids) == 1 && ids[0] == "all" {
			ids = nil
			for _, d := range experiments.All() {
				ids = append(ids, d.ID)
			}
		}
		runIDs(ids, *quick, *seed, *csvDir, *workers)
	default:
		fmt.Fprintf(os.Stderr, "cpmsim: unknown command %q\n", args[0])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: cpmsim [flags] list | tables | run <id>...|all\n\n")
	flag.PrintDefaults()
}

func listExperiments() {
	var rows [][]string
	for _, d := range experiments.All() {
		rows = append(rows, []string{d.ID, d.Title})
	}
	fmt.Print(trace.Table([]string{"ID", "Reproduces"}, rows))
}

// runReport is one experiment's buffered output, assembled off the main
// goroutine so pooled runs can't interleave reports.
type runReport struct {
	text string
	errs []string
}

func runIDs(ids []string, quick bool, seed uint64, csvDir string, workers int) {
	opts := experiments.Options{Quick: quick, Seed: seed}
	reports, _ := engine.Map(engine.Pool{Workers: workers}, len(ids), func(i int) (runReport, error) {
		r := runOne(ids[i], opts, csvDir)
		if len(r.errs) == 0 {
			fmt.Fprintf(os.Stderr, "done %s\n", ids[i])
		}
		return r, nil
	})
	failed := false
	for _, r := range reports {
		os.Stdout.WriteString(r.text)
		for _, e := range r.errs {
			fmt.Fprintln(os.Stderr, e)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func runOne(id string, opts experiments.Options, csvDir string) (rep runReport) {
	var b strings.Builder
	defer func() { rep.text = b.String() }()
	d, err := experiments.ByID(id)
	if err != nil {
		rep.errs = append(rep.errs, err.Error())
		return rep
	}
	fmt.Fprintf(&b, "=== %s — %s ===\n", d.ID, d.Title)
	fmt.Fprintf(&b, "Paper: %s\n\n", d.Paper)
	r, err := d.Run(opts)
	if err != nil {
		rep.errs = append(rep.errs, fmt.Sprintf("%s: %v", id, err))
		return rep
	}
	fmt.Fprintln(&b, r.Text)
	if len(r.Metrics) > 0 {
		var rows [][]string
		for _, k := range trace.SortedKeys(r.Metrics) {
			rows = append(rows, []string{k, fmt.Sprintf("%.4g", r.Metrics[k])})
		}
		fmt.Fprintln(&b, trace.Table([]string{"Metric", "Value"}, rows))
	}
	if csvDir != "" {
		if err := writeCSVs(csvDir, r); err != nil {
			rep.errs = append(rep.errs, fmt.Sprintf("%s: writing CSV: %v", id, err))
		}
	}
	return rep
}

func writeCSVs(dir string, r experiments.Result) error {
	if len(r.Sets) == 0 {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range trace.SortedKeys(r.Sets) {
		clean := strings.ReplaceAll(name, string(filepath.Separator), "-")
		f, err := os.Create(filepath.Join(dir, clean+".csv"))
		if err != nil {
			return err
		}
		if err := r.Sets[name].WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
