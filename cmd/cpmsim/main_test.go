package main

import (
	"io"
	"strings"
	"testing"
)

func TestParseCLIValid(t *testing.T) {
	c, err := parseCLI([]string{"-quick", "-seed", "7", "-check", "run", "fig11", "fig12"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !c.opts.Quick || c.opts.Seed != 7 || !c.opts.Check {
		t.Errorf("options not threaded: %+v", c.opts)
	}
	if c.cmd != "run" || len(c.ids) != 2 || c.ids[0] != "fig11" {
		t.Errorf("command not parsed: %+v", c)
	}
}

func TestParseCLIDefaults(t *testing.T) {
	c, err := parseCLI([]string{"tables"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if c.opts.Seed != 1 || c.opts.Quick || c.opts.Check || c.workers != 1 {
		t.Errorf("defaults wrong: %+v", c)
	}
	if len(c.ids) != 3 || c.ids[0] != "table1" {
		t.Errorf("tables shorthand wrong: %v", c.ids)
	}
}

func TestParseCLIRunAll(t *testing.T) {
	c, err := parseCLI([]string{"run", "all"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.ids) < 10 {
		t.Errorf("run all expanded to only %d experiments", len(c.ids))
	}
	for _, id := range c.ids {
		if id == "all" {
			t.Error("sentinel 'all' leaked into the ID list")
		}
	}
}

func TestParseCLIRejects(t *testing.T) {
	cases := []struct {
		name string
		argv []string
		want string
	}{
		{"zero seed", []string{"-seed", "0", "run", "fig11"}, "-seed must be non-zero"},
		{"negative workers", []string{"-workers", "-2", "run", "fig11"}, "-workers must be >= 0"},
		{"no command", []string{"-quick"}, "need a command"},
		{"unknown command", []string{"frobnicate"}, "unknown command"},
		{"run without ids", []string{"run"}, "need experiment IDs"},
		{"unknown flag", []string{"-frob", "run", "fig11"}, "not defined"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := parseCLI(c.argv, io.Discard)
			if err == nil {
				t.Fatalf("parseCLI(%v) accepted", c.argv)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("parseCLI(%v) = %v, want error containing %q", c.argv, err, c.want)
			}
		})
	}
}
