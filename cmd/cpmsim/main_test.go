package main

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/cpm-sim/cpm/internal/check"
)

func TestParseCLIValid(t *testing.T) {
	c, err := parseCLI([]string{"-quick", "-seed", "7", "-check", "run", "fig11", "fig12"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !c.opts.Quick || c.opts.Seed != 7 || !c.opts.Check {
		t.Errorf("options not threaded: %+v", c.opts)
	}
	if c.cmd != "run" || len(c.ids) != 2 || c.ids[0] != "fig11" {
		t.Errorf("command not parsed: %+v", c)
	}
}

func TestParseCLIDefaults(t *testing.T) {
	c, err := parseCLI([]string{"tables"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if c.opts.Seed != 1 || c.opts.Quick || c.opts.Check || c.workers != 1 {
		t.Errorf("defaults wrong: %+v", c)
	}
	if len(c.ids) != 3 || c.ids[0] != "table1" {
		t.Errorf("tables shorthand wrong: %v", c.ids)
	}
}

func TestParseCLIRunAll(t *testing.T) {
	c, err := parseCLI([]string{"run", "all"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.ids) < 10 {
		t.Errorf("run all expanded to only %d experiments", len(c.ids))
	}
	for _, id := range c.ids {
		if id == "all" {
			t.Error("sentinel 'all' leaked into the ID list")
		}
	}
}

func TestParseCLIDiagFlags(t *testing.T) {
	c, err := parseCLI([]string{"-metrics", "-", "-pprof", "localhost:6060", "-trace", "run.trace", "list"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if c.diag == nil {
		t.Fatal("diag flags not bound")
	}
	if c.diag.MetricsPath != "-" || c.diag.PprofAddr != "localhost:6060" || c.diag.TracePath != "run.trace" {
		t.Errorf("diag flags not threaded: %+v", c.diag)
	}
}

func TestParseCLIScenario(t *testing.T) {
	c, err := parseCLI([]string{"scenario", "cpm-default"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if c.cmd != "scenario" || len(c.ids) != 1 || c.ids[0] != "cpm-default" {
		t.Errorf("scenario command not parsed: %+v", c)
	}
	c, err = parseCLI([]string{"scenario", "all"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.ids) != len(check.Canonical()) {
		t.Errorf("scenario all expanded to %d names, want %d", len(c.ids), len(check.Canonical()))
	}
	for _, id := range c.ids {
		if id == "all" {
			t.Error("sentinel 'all' leaked into the scenario list")
		}
	}
}

func TestParseCLIRejects(t *testing.T) {
	cases := []struct {
		name string
		argv []string
		want string
	}{
		{"zero seed", []string{"-seed", "0", "run", "fig11"}, "-seed must be non-zero"},
		{"negative workers", []string{"-workers", "-2", "run", "fig11"}, "-workers must be >= 0"},
		{"no command", []string{"-quick"}, "need a command"},
		{"unknown command", []string{"frobnicate"}, "unknown command"},
		{"run without ids", []string{"run"}, "need experiment IDs"},
		{"scenario without names", []string{"scenario"}, "need scenario names"},
		{"unknown scenario", []string{"scenario", "nope"}, "unknown scenario"},
		{"unknown flag", []string{"-frob", "run", "fig11"}, "not defined"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := parseCLI(c.argv, io.Discard)
			if err == nil {
				t.Fatalf("parseCLI(%v) accepted", c.argv)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("parseCLI(%v) = %v, want error containing %q", c.argv, err, c.want)
			}
		})
	}
}

// TestScenarioMetricsJSONRoundTrip is the CLI-level regression test for
// non-finite telemetry: a scenario run plus a zero-access miss-rate gauge
// (NaN, as sim.Stats.MissRate reports before any access) must still export
// JSON that encoding/json accepts, with the NaN encoded as null.
// TestDefaultCheckpointAt pins the -at default: the end of warmup when a
// warm-up window exists, the run's midpoint when it does not. The zero-warmup
// row is the regression case — the old default resolved to 0 and failed the
// range check with a misleading "outside the run's interval range" error even
// though the user never passed -at.
func TestDefaultCheckpointAt(t *testing.T) {
	cases := []struct {
		name        string
		warm, total int
		want        int
	}{
		{"default scenario windows", 40, 120, 40},
		{"long warmup", 200, 500, 200},
		{"zero warmup", 0, 120, 60},
		{"zero warmup single epoch", 0, 20, 10},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := defaultCheckpointAt(c.warm, c.total)
			if got != c.want {
				t.Errorf("defaultCheckpointAt(%d, %d) = %d, want %d", c.warm, c.total, got, c.want)
			}
			if got <= 0 || got >= c.total {
				t.Errorf("default %d outside the valid (0, %d) range", got, c.total)
			}
		})
	}
}

func TestScenarioMetricsJSONRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("golden scenario replay in -short mode")
	}
	c, err := parseCLI([]string{"-metrics", filepath.Join(t.TempDir(), "telemetry.json"), "scenario", "cpm-default"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	c.opts.Metrics = c.diag.Registry()
	if c.opts.Metrics == nil {
		t.Fatal("registry not created for -metrics")
	}
	var out bytes.Buffer
	if err := runScenarios(c, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "scenario cpm-default") {
		t.Errorf("no scenario report:\n%s", out.String())
	}
	// A zero-access interval reports MissRate() == NaN; the exporter must
	// encode it as null rather than produce invalid JSON.
	c.opts.Metrics.GaugeVec("cpm_cache_miss_rate",
		"Cumulative cache miss rate by hierarchy level (NaN until the level is accessed).",
		"run", "level").With("zero-access", "l1i").Set(math.NaN())
	if err := c.diag.WriteMetrics(c.opts.Metrics, io.Discard); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(c.diag.MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("exported telemetry is not valid JSON: %v", err)
	}
	if !bytes.Contains(raw, []byte(`"value": null`)) {
		t.Errorf("NaN miss rate not encoded as null:\n%s", raw)
	}
	if !bytes.Contains(raw, []byte(`"cpm_intervals_total"`)) {
		t.Errorf("scenario telemetry missing from export:\n%s", raw)
	}
}
