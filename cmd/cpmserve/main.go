// Command cpmserve is the simulation-as-a-service daemon: an HTTP/JSON
// front end over the deterministic scenario stack (internal/serve).
//
// Usage:
//
//	cpmserve                  # serve on :8080
//	cpmserve -addr :9090      # serve elsewhere
//	cpmserve -smoke 100       # no listener: self-drive 100 requests,
//	                          # print the /metrics scrape to stdout
//
// Endpoints:
//
//	POST /v1/run       run (or fetch from cache) a canonical scenario;
//	                   ?stream=1 selects the NDJSON per-epoch stream
//	GET  /v1/scenarios list canonical scenario names
//	GET  /v1/stats     admission counters
//	GET  /healthz      200 ok / 503 draining
//	GET  /metrics      Prometheus text exposition
//
// Flags:
//
//	-addr A       listen address (default :8080)
//	-workers N    concurrent simulation workers (default 4)
//	-queue N      queued runs beyond the workers before 429 (default 64)
//	-cache N      LRU result-cache entries (default 256, 0 disables)
//	-batch N      max jobs coalesced into one farm batch (default 16,
//	              1 disables batching)
//	-smoke N      run an N-request self-test instead of listening
//	-metrics F    also export the registry to F on exit ("-" = stdout)
//	-pprof ADDR   serve net/http/pprof on ADDR
//	-trace F      write a runtime/trace capture to F
//
// On SIGINT/SIGTERM the daemon drains: in-flight and queued runs finish,
// new submissions get 503 + Retry-After, and the process exits once the
// last accepted run has been answered.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/cpm-sim/cpm/internal/diag"
	"github.com/cpm-sim/cpm/internal/metrics"
	"github.com/cpm-sim/cpm/internal/serve"
)

// cliConfig is the parsed, validated command line.
type cliConfig struct {
	addr  string
	opts  serve.Options
	smoke int
	diag  *diag.Flags
}

// parseCLI parses and validates argv (without the program name). It is the
// testable core of main: every reject path returns an error instead of
// exiting.
func parseCLI(argv []string, stderr io.Writer) (cliConfig, error) {
	fs := flag.NewFlagSet("cpmserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 4, "concurrent simulation workers")
	queue := fs.Int("queue", 64, "queued runs beyond the workers before 429")
	cache := fs.Int("cache", 256, "LRU result-cache entries (0 disables)")
	batch := fs.Int("batch", 16, "max jobs per farm batch (1 disables batching)")
	smoke := fs.Int("smoke", 0, "run an N-request self-test instead of listening")
	dflags := diag.AddFlags(fs)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: cpmserve [flags]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return cliConfig{}, err
	}
	if len(fs.Args()) != 0 {
		return cliConfig{}, fmt.Errorf("cpmserve: unexpected arguments %v", fs.Args())
	}
	if *workers <= 0 {
		return cliConfig{}, fmt.Errorf("cpmserve: -workers must be > 0, got %d", *workers)
	}
	if *queue < 0 {
		return cliConfig{}, fmt.Errorf("cpmserve: -queue must be >= 0, got %d", *queue)
	}
	if *cache < 0 {
		return cliConfig{}, fmt.Errorf("cpmserve: -cache must be >= 0, got %d", *cache)
	}
	if *batch < 1 {
		return cliConfig{}, fmt.Errorf("cpmserve: -batch must be >= 1, got %d", *batch)
	}
	if *smoke < 0 {
		return cliConfig{}, fmt.Errorf("cpmserve: -smoke must be >= 0, got %d", *smoke)
	}
	cacheEntries := *cache
	if cacheEntries == 0 {
		cacheEntries = -1 // flag 0 = disabled; Options 0 = default
	}
	return cliConfig{
		addr: *addr,
		opts: serve.Options{
			Workers:      *workers,
			QueueDepth:   *queue,
			CacheEntries: cacheEntries,
			BatchMax:     *batch,
		},
		smoke: *smoke,
		diag:  dflags,
	}, nil
}

func main() {
	c, err := parseCLI(os.Args[1:], os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	stopTrace, err := c.diag.Start(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer stopTrace()

	reg := metrics.NewRegistry()
	c.opts.Registry = reg
	srv := serve.NewServer(c.opts)

	if c.smoke > 0 {
		err = runSmoke(srv, c.smoke, os.Stdout, os.Stderr)
	} else {
		err = listenAndDrain(srv, c.addr, os.Stderr)
	}
	srv.Close()
	if err != nil {
		stopTrace()
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := c.diag.WriteMetrics(reg, os.Stdout); err != nil {
		stopTrace()
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// listenAndDrain serves until SIGINT/SIGTERM, then drains gracefully:
// admission stops (503), accepted runs finish and are answered, then the
// HTTP server shuts down.
func listenAndDrain(srv *serve.Server, addr string, logw io.Writer) error {
	hs := &http.Server{
		Addr:              addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(logw, "cpmserve listening on %s\n", addr)
		errc <- hs.ListenAndServe()
	}()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return fmt.Errorf("cpmserve: %w", err)
	case sig := <-sigc:
		fmt.Fprintf(logw, "cpmserve: %v, draining\n", sig)
	}
	srv.Drain() // in-flight and queued runs finish; new submissions get 503
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("cpmserve: shutdown: %w", err)
	}
	fmt.Fprintln(logw, "cpmserve: drained")
	return nil
}
