package main

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"github.com/cpm-sim/cpm/internal/check"
	"github.com/cpm-sim/cpm/internal/serve"
)

// runSmoke self-drives the full HTTP stack: a loopback listener, n
// concurrent /v1/run requests cycling scenarios, seeds and both response
// modes, then the /metrics scrape copied to stdout (CI archives it as the
// smoke artifact). Any non-200, or two responses for one cache key that
// disagree byte-for-byte, fails the smoke.
func runSmoke(srv *serve.Server, n int, stdout, stderr io.Writer) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("cpmserve -smoke: %w", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 5 * time.Minute}

	names := check.ScenarioNames()
	var (
		mu     sync.Mutex
		bodies = map[string][]byte{} // cache key -> first body seen (per mode)
		errs   []error
	)
	fail := func(err error) {
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
	}

	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			// The seed cycle (5) is coprime with the scenario cycle (6), so
			// a 100-request smoke spreads over 30 distinct runs — enough
			// churn to exercise misses, hits, coalescing and farm batching.
			req := serve.Request{
				Scenario: names[i%len(names)],
				Seed:     uint64(1 + i%5),
				Stream:   i%4 == 3,
			}
			body, key, err := postRun(client, base, req)
			if err != nil {
				fail(fmt.Errorf("request %d (%s seed %d): %w", i, req.Scenario, req.Seed, err))
				return
			}
			mode := key
			if req.Stream {
				mode += "/ndjson"
			}
			mu.Lock()
			if prev, ok := bodies[mode]; ok && !bytes.Equal(prev, body) {
				errs = append(errs, fmt.Errorf("request %d: response for key %s diverged from an earlier response", i, key))
			} else if !ok {
				bodies[mode] = body
			}
			mu.Unlock()
		}()
	}
	wg.Wait()

	st := srv.Stats()
	fmt.Fprintf(stderr, "cpmserve -smoke: %d requests: %d runs (%d batched in %d farm groups), %d hits, %d coalesced, %d failures\n",
		n, st.Runs, st.BatchedJobs, st.FarmBatches, st.Hits, st.Coalesced, len(errs))
	for _, e := range errs {
		fmt.Fprintln(stderr, " ", e)
	}

	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("cpmserve -smoke: scraping /metrics: %w", err)
	}
	defer resp.Body.Close()
	if _, err := io.Copy(stdout, resp.Body); err != nil {
		return fmt.Errorf("cpmserve -smoke: copying /metrics: %w", err)
	}
	if len(errs) > 0 {
		return fmt.Errorf("cpmserve -smoke: %d of %d requests failed", len(errs), n)
	}
	return nil
}

// postRun issues one /v1/run request and returns the body and cache key.
func postRun(client *http.Client, base string, req serve.Request) ([]byte, string, error) {
	doc := fmt.Sprintf(`{"scenario":%q,"seed":%d,"stream":%v}`, req.Scenario, req.Seed, req.Stream)
	resp, err := client.Post(base+"/v1/run", "application/json", bytes.NewReader([]byte(doc)))
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return body, resp.Header.Get(serve.HeaderCacheKey), nil
}
