package main

import (
	"io"
	"strings"
	"testing"

	"github.com/cpm-sim/cpm/internal/metrics"
	"github.com/cpm-sim/cpm/internal/serve"
)

func TestParseCLIDefaults(t *testing.T) {
	c, err := parseCLI(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if c.addr != ":8080" {
		t.Errorf("addr = %q", c.addr)
	}
	if c.opts.Workers != 4 || c.opts.QueueDepth != 64 || c.opts.CacheEntries != 256 || c.opts.BatchMax != 16 {
		t.Errorf("default options = %+v", c.opts)
	}
	if c.smoke != 0 {
		t.Errorf("smoke = %d", c.smoke)
	}
}

func TestParseCLIRejects(t *testing.T) {
	cases := []struct {
		name string
		argv []string
		frag string
	}{
		{"zero workers", []string{"-workers", "0"}, "-workers"},
		{"negative queue", []string{"-queue", "-1"}, "-queue"},
		{"negative cache", []string{"-cache", "-1"}, "-cache"},
		{"zero batch", []string{"-batch", "0"}, "-batch"},
		{"negative smoke", []string{"-smoke", "-1"}, "-smoke"},
		{"stray argument", []string{"serve"}, "unexpected arguments"},
		{"unknown flag", []string{"-bogus"}, "bogus"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseCLI(tc.argv, io.Discard)
			if err == nil {
				t.Fatalf("argv %v accepted", tc.argv)
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Errorf("error %q does not mention %q", err, tc.frag)
			}
		})
	}
}

func TestParseCLIOverrides(t *testing.T) {
	c, err := parseCLI([]string{"-addr", ":9090", "-workers", "2", "-queue", "0",
		"-cache", "8", "-batch", "1", "-smoke", "5"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if c.addr != ":9090" || c.opts.Workers != 2 || c.opts.QueueDepth != 0 ||
		c.opts.CacheEntries != 8 || c.opts.BatchMax != 1 || c.smoke != 5 {
		t.Errorf("parsed config = %+v smoke=%d", c.opts, c.smoke)
	}
}

// TestSmokeRuns drives the -smoke self-test end to end on a tiny request
// count: real listener, real simulations, and the /metrics scrape must be
// valid Prometheus exposition.
func TestSmokeRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	reg := metrics.NewRegistry()
	srv := serve.NewServer(serve.Options{Workers: 2, QueueDepth: 8, Registry: reg})
	defer srv.Close()
	var out, errlog strings.Builder
	if err := runSmoke(srv, 4, &out, &errlog); err != nil {
		t.Fatalf("smoke failed: %v\nlog: %s", err, errlog.String())
	}
	if _, err := metrics.ParsePrometheus(strings.NewReader(out.String())); err != nil {
		t.Errorf("smoke /metrics scrape is not valid exposition: %v", err)
	}
	if !strings.Contains(out.String(), "cpmserve_requests_total") {
		t.Errorf("smoke scrape lacks server-plane metrics")
	}
	if st := srv.Stats(); st.Runs == 0 {
		t.Errorf("smoke ran no simulations: %+v", st)
	}
}
