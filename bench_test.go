package cpm_test

// The benchmark harness regenerates every data table and figure of the
// paper's evaluation (BenchmarkTableN / BenchmarkFigNN — one per artefact,
// reporting the headline metrics alongside timing), plus the ablation and
// microbenchmarks DESIGN.md calls out:
//
//	go test -bench=. -benchmem
//
// Figure benches run the Quick-mode harness; `cpmsim run all` produces the
// full-length reports.

import (
	"testing"

	cpm "github.com/cpm-sim/cpm"
	"github.com/cpm-sim/cpm/internal/cache"
	"github.com/cpm-sim/cpm/internal/control"
	"github.com/cpm-sim/cpm/internal/engine"
	"github.com/cpm-sim/cpm/internal/experiments"
	"github.com/cpm-sim/cpm/internal/farm"
	"github.com/cpm-sim/cpm/internal/gpm"
	"github.com/cpm-sim/cpm/internal/maxbips"
	"github.com/cpm-sim/cpm/internal/noc"
	"github.com/cpm-sim/cpm/internal/power"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/stats"
	"github.com/cpm-sim/cpm/internal/workload"
)

// benchExperiment runs one registered harness per iteration and reports its
// headline metrics through the benchmark output.
func benchExperiment(b *testing.B, id string, reported ...string) {
	b.Helper()
	d, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var last experiments.Result
	for i := 0; i < b.N; i++ {
		last, err = d.Run(experiments.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, m := range reported {
		if v, ok := last.Metrics[m]; ok {
			b.ReportMetric(v, m)
		}
	}
}

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1", "dvfs_levels") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2", "benchmarks") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3", "mix1_cores") }

func BenchmarkFig05ModelValidation(b *testing.B) {
	benchExperiment(b, "fig5", "plant_gain", "mape_pct")
}
func BenchmarkFig06TransducerFits(b *testing.B) {
	benchExperiment(b, "fig6", "avg_r2")
}
func BenchmarkFig07Provisioning(b *testing.B) {
	benchExperiment(b, "fig7", "min_share_pct", "max_share_pct")
}
func BenchmarkFig08IslandTracking(b *testing.B) {
	benchExperiment(b, "fig8", "worst_gap_pct_chip")
}
func BenchmarkFig09PICEnvelope(b *testing.B) {
	benchExperiment(b, "fig9", "mean_overshoot", "mean_settle_invk")
}
func BenchmarkFig10ChipTracking(b *testing.B) {
	benchExperiment(b, "fig10", "worst_overshoot", "worst_undershoot")
}
func BenchmarkFig11BudgetCurves(b *testing.B) {
	benchExperiment(b, "fig11", "ours_worst_overshoot", "maxbips_always_below")
}
func BenchmarkFig12Degradation(b *testing.B) {
	benchExperiment(b, "fig12", "degradation_at_80")
}
func BenchmarkFig13IslandSize(b *testing.B) {
	benchExperiment(b, "fig13", "ours_1", "maxbips_1", "ours_4", "maxbips_4")
}
func BenchmarkFig14FullBudget(b *testing.B) {
	benchExperiment(b, "fig14", "avg_degradation")
}
func BenchmarkFig15Scaling(b *testing.B) {
	benchExperiment(b, "fig15", "ours_32", "maxbips_32")
}
func BenchmarkFig16MixSensitivity(b *testing.B) {
	benchExperiment(b, "fig16", "Mix-1", "Mix-2")
}
func BenchmarkFig17Intervals(b *testing.B) {
	benchExperiment(b, "fig17", "size2_pic2.5ms", "size2_pic5.0ms")
}
func BenchmarkFig18Thermal(b *testing.B) {
	benchExperiment(b, "fig18", "perf_violation_frac", "thermal_violations")
}
func BenchmarkFig19Variation(b *testing.B) {
	benchExperiment(b, "fig19", "mean_pt_improvement", "mean_throughput_loss")
}

// BenchmarkPoleAnalysis covers the §II-D controller design computation
// (Equations 9–13): closed-loop composition, root finding, Jury test and
// the stable-gain-range search.
func BenchmarkPoleAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := control.Analyze(control.PaperPlantGain, control.PaperGains); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaxStableGainSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := control.MaxStableGainScale(control.PaperPlantGain, control.PaperGains, 1e-4); err != nil {
			b.Fatal(err)
		}
	}
}

// --- executor ablation: sequential vs parallel island stepping -------------

func benchSimStep(b *testing.B, mix workload.Mix, parallel bool) {
	cfg := sim.DefaultConfig(mix)
	cfg.Parallel = parallel
	c, err := sim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
	}
}

func BenchmarkSimStep8Sequential(b *testing.B)  { benchSimStep(b, workload.Mix1(), false) }
func BenchmarkSimStep8Parallel(b *testing.B)    { benchSimStep(b, workload.Mix1(), true) }
func BenchmarkSimStep32Sequential(b *testing.B) { benchSimStep(b, workload.Mix3(2), false) }
func BenchmarkSimStep32Parallel(b *testing.B)   { benchSimStep(b, workload.Mix3(2), true) }

// --- sensor ablation: linear vs level-aware vs oracle feedback -------------

// benchTracking measures steady-state budget-tracking error under different
// feedback estimators; the squared-error metric is the figure of merit.
func benchTracking(b *testing.B, mode string) {
	cfg := cpm.DefaultConfig(cpm.Mix1())
	cfg.Parallel = true
	cal, err := cpm.Calibrate(cfg, 60, 240)
	if err != nil {
		b.Fatal(err)
	}
	budget := cal.BudgetW(0.8)
	var sse float64
	for i := 0; i < b.N; i++ {
		chip, err := cpm.NewChip(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ccfg := cpm.ControllerConfig{BudgetW: budget}
		switch mode {
		case "linear":
			ests := make([]cpm.Estimator, len(cal.LinearTransducers))
			for j, t := range cal.LinearTransducers {
				ests[j] = t
			}
			ccfg.Transducers = ests
		case "level":
			ccfg.Transducers = cal.Transducers
		case "oracle":
			ccfg.UseOraclePower = true
		}
		ctl, err := cpm.NewController(chip, ccfg)
		if err != nil {
			b.Fatal(err)
		}
		ctl.Run(120)
		sse = 0
		for k := 0; k < 200; k++ {
			r := ctl.Step()
			e := (r.Sim.ChipPowerW - budget) / budget
			sse += e * e
		}
	}
	b.ReportMetric(sse, "tracking_sse")
}

func BenchmarkAblationTransducerLinear(b *testing.B)     { benchTracking(b, "linear") }
func BenchmarkAblationTransducerLevelAware(b *testing.B) { benchTracking(b, "level") }
func BenchmarkAblationOraclePower(b *testing.B)          { benchTracking(b, "oracle") }

// --- GPM policy ablation ----------------------------------------------------

func benchPolicyThroughput(b *testing.B, mk func() gpm.Policy) {
	cfg := cpm.DefaultConfig(cpm.Mix1())
	cfg.Parallel = true
	cal, err := cpm.Calibrate(cfg, 60, 240)
	if err != nil {
		b.Fatal(err)
	}
	budget := cal.BudgetW(0.8)
	var bips float64
	for i := 0; i < b.N; i++ {
		chip, err := cpm.NewChip(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ctl, err := cpm.NewController(chip, cpm.ControllerConfig{
			BudgetW: budget, Policy: mk(), Transducers: cal.Transducers,
		})
		if err != nil {
			b.Fatal(err)
		}
		ctl.Run(120)
		bips = 0
		for k := 0; k < 200; k++ {
			bips += ctl.Step().Sim.TotalBIPS / 200
		}
	}
	b.ReportMetric(bips, "BIPS")
}

func BenchmarkAblationPolicyEqualShare(b *testing.B) {
	benchPolicyThroughput(b, func() gpm.Policy { return gpm.EqualShare{} })
}
func BenchmarkAblationPolicyPerformanceAware(b *testing.B) {
	benchPolicyThroughput(b, func() gpm.Policy { return &gpm.PerformanceAware{} })
}

// --- microbenchmarks --------------------------------------------------------

func BenchmarkCacheAccess(b *testing.B) {
	c, err := cache.New(cache.TableIL2PerCore())
	if err != nil {
		b.Fatal(err)
	}
	r := stats.NewRand(1)
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(r.Intn(1<<22)) &^ 63
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i%len(addrs)])
	}
}

func BenchmarkPolynomialRoots(b *testing.B) {
	p := control.CharacteristicPoly(control.PaperPlantGain, control.PaperGains)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := control.Roots(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaxBIPSExhaustive4(b *testing.B) {
	benchMaxBIPSPlan(b, 4)
}

func BenchmarkMaxBIPSDP16(b *testing.B) {
	benchMaxBIPSPlan(b, 16)
}

func benchMaxBIPSPlan(b *testing.B, islands int) {
	pl, err := maxbips.New(powerTable(b))
	if err != nil {
		b.Fatal(err)
	}
	obs := make([]maxbips.IslandObs, islands)
	for i := range obs {
		obs[i] = maxbips.IslandObs{Level: 7, PowerW: 15 + float64(i%5), BIPS: 2 + float64(i%3)}
	}
	budget := float64(islands) * 13
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := pl.Choose(budget, obs); len(got) != islands {
			b.Fatal("bad plan")
		}
	}
}

func BenchmarkCalibration(b *testing.B) {
	cfg := cpm.DefaultConfig(cpm.Mix1())
	cfg.Parallel = true
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := cpm.Calibrate(cfg, 20, 80); err != nil {
			b.Fatal(err)
		}
	}
}

func powerTable(b *testing.B) *power.DVFSTable {
	b.Helper()
	return power.PentiumM()
}

func BenchmarkExt1EnergyPolicy(b *testing.B) {
	benchExperiment(b, "ext1", "floor90_power_frac")
}
func BenchmarkExt2FaultRobustness(b *testing.B) {
	benchExperiment(b, "ext2", "err_case0", "err_case3")
}
func BenchmarkExt3CalibratedExponent(b *testing.B) {
	benchExperiment(b, "ext3", "elasticity")
}

// --- substrate ablations ------------------------------------------------

// benchSubstrate measures unmanaged chip throughput under a substrate
// variant, reporting BIPS so the ablation's effect is visible next to its
// cost.
func benchSubstrate(b *testing.B, mutate func(*sim.Config)) {
	cfg := sim.DefaultConfig(workload.Mix1())
	cfg.Parallel = true
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := sim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var bips float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bips = c.Step().TotalBIPS
	}
	b.ReportMetric(bips, "BIPS")
}

func BenchmarkAblationBaselineSubstrate(b *testing.B) { benchSubstrate(b, nil) }

func BenchmarkAblationWithNoC(b *testing.B) {
	benchSubstrate(b, func(cfg *sim.Config) {
		n := noc.DefaultConfig(2, 4)
		cfg.NoC = &n
	})
}

func BenchmarkAblationWithL2Prefetch(b *testing.B) {
	benchSubstrate(b, func(cfg *sim.Config) { cfg.L2PrefetchDegree = 4 })
}

func BenchmarkAblationSharedL2(b *testing.B) {
	benchSubstrate(b, func(cfg *sim.Config) { cfg.SharedL2 = true })
}

// Replay skips phase generation and cache simulation; its per-interval cost
// should be a small fraction of the live engine's (compare against
// BenchmarkAblationBaselineSubstrate).
func BenchmarkAblationReplayEngine(b *testing.B) {
	recCfg := sim.DefaultConfig(workload.Mix1())
	recCfg.RecordTraces = true
	rec, err := sim.New(recCfg)
	if err != nil {
		b.Fatal(err)
	}
	for k := 0; k < 200; k++ {
		rec.Step()
	}
	set, err := rec.Traces()
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.DefaultConfig(workload.Mix1())
	cfg.Parallel = true
	cfg.Replay = &set
	c, err := sim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
	}
}

// --- fleet farm: batched shared-sampler stepping ---------------------------

// benchFleetFarm measures one lockstep round of an n-chip farm sharing one
// workload key: the sampler runs once per round and every chip pays only
// its frequency-dependent compute half. Per-op cost therefore is one live
// sampling pass plus n thin-chip halves; the aggregate-scalar reference is
// n independent live chips, i.e. n x BenchmarkSimStep8Sequential ns (steps
// of independent sessions compose linearly). benchreport folds the two
// into the fleet chips/sec and aggregate-speedup entries of BENCH_PR6.json.
func benchFleetFarm(b *testing.B, nChips int) {
	specs := make([]farm.ChipSpec, nChips)
	for i := range specs {
		cfg := sim.DefaultConfig(workload.Mix1())
		cfg.Parallel = false
		specs[i] = farm.ChipSpec{
			Config: cfg,
			NewSession: func(cmp *sim.CMP) (*engine.Session, error) {
				// Effectively unbounded window: the benchmark only ever
				// advances rounds, no session may finish mid-measurement.
				return engine.NewSession(engine.NewChipRunner(cmp), engine.SessionConfig{
					MeasureEpochs: 1 << 20, Period: 20, Label: "fleet",
				})
			},
		}
	}
	f, err := farm.New(specs, farm.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if f.NumGroups() != 1 {
		b.Fatalf("fleet bench expects one shared sampler group, got %d", f.NumGroups())
	}
	pool := engine.Pool{Workers: 1}
	if err := f.RunRounds(pool, 2); err != nil { // enter steady state
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.RunRounds(pool, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perChip := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(nChips)
	b.ReportMetric(perChip, "ns/chip-step")
	b.ReportMetric(1e9/perChip, "chip-steps/sec")
}

func BenchmarkFleetFarm64(b *testing.B)   { benchFleetFarm(b, 64) }
func BenchmarkFleetFarm1024(b *testing.B) { benchFleetFarm(b, 1024) }
