// Custom-policy example: §II-C notes that the GPM/PIC decoupling makes the
// provisioning policy pluggable ("policies for reducing energy consumption
// by providing a minimum guarantee on the performance ... are also feasible
// using our approach, but are not evaluated"). This example implements one:
// an energy saver that keeps shrinking the effective chip budget as long as
// throughput stays above a floor relative to the unmanaged baseline, and
// backs off when it dips below. Everything below the policy — the PICs, the
// transducers, the simulator — is reused untouched.
package main

import (
	"fmt"
	"log"

	"github.com/cpm-sim/cpm/internal/core"
	"github.com/cpm-sim/cpm/internal/gpm"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/workload"
)

// energySaver wraps the performance-aware policy with an outer loop on the
// effective budget: spend less whenever performance allows.
type energySaver struct {
	inner gpm.PerformanceAware
	// floorBIPS is the minimum acceptable chip throughput.
	floorBIPS float64
	// shrink is the effective budget as a fraction of the offered one.
	shrink float64
}

func (p *energySaver) Name() string { return "energy-saver" }

func (p *energySaver) Provision(budgetW float64, obs []gpm.IslandObs) []float64 {
	total := 0.0
	for _, o := range obs {
		total += o.BIPS
	}
	if p.shrink == 0 {
		p.shrink = 1
	}
	if total > p.floorBIPS*1.02 {
		p.shrink *= 0.97 // performance headroom: save more energy
	} else if total < p.floorBIPS {
		p.shrink /= 0.94 // floor breached: give power back quickly
	}
	if p.shrink > 1 {
		p.shrink = 1
	}
	if p.shrink < 0.4 {
		p.shrink = 0.4
	}
	return p.inner.Provision(budgetW*p.shrink, obs)
}

func main() {
	cfg := sim.DefaultConfig(workload.Mix1())
	cfg.Parallel = true
	cal, err := core.Calibrate(cfg, 60, 240)
	if err != nil {
		log.Fatal(err)
	}

	// Guarantee at least 90% of unmanaged throughput; spend as little
	// power as that allows.
	policy := &energySaver{floorBIPS: 0.90 * cal.UnmanagedBIPS}
	cmp, err := sim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	c, err := core.New(cmp, core.Config{
		BudgetW:     cal.BudgetW(1.0), // offer the full demand; the policy shrinks it
		Policy:      policy,
		Transducers: cal.Transducers,
	})
	if err != nil {
		log.Fatal(err)
	}

	c.Run(6 * 20)
	fmt.Printf("Unmanaged: %.1f W at %.2f BIPS; floor: %.2f BIPS (90%%)\n\n", cal.UnmanagedPowerW, cal.UnmanagedBIPS, policy.floorBIPS)
	fmt.Println("epoch   chip W   BIPS    vs floor   effective budget")
	var meanP, meanB float64
	const epochs = 24
	for e := 0; e < epochs; e++ {
		var pw, bips float64
		for k := 0; k < 20; k++ {
			r := c.Step()
			pw += r.Sim.ChipPowerW / 20
			bips += r.Sim.TotalBIPS / 20
		}
		meanP += pw / epochs
		meanB += bips / epochs
		fmt.Printf("%5d   %6.1f   %5.2f   %+6.1f%%   %5.1f%% of demand\n",
			e, pw, bips, (bips/policy.floorBIPS-1)*100, policy.shrink*100)
	}
	fmt.Printf("\nSteady state: %.1f W (%.0f%% of unmanaged) at %.2f BIPS (%.0f%% of unmanaged)\n",
		meanP, meanP/cal.UnmanagedPowerW*100, meanB, meanB/cal.UnmanagedBIPS*100)
	fmt.Println("Energy saved without violating the performance guarantee — a policy the paper")
	fmt.Println("sketches but does not evaluate, running on the same two-tier machinery.")
}
