// Replay example: record a workload trace once, then evaluate two GPM
// policies on *identical* workload behaviour. Interval traces are
// frequency-independent (they capture what the applications did, not what
// the controller chose), so a recorded run can be replayed under any DVFS
// trajectory — removing workload variance from controller comparisons and
// skipping the cache simulation entirely.
package main

import (
	"bytes"
	"fmt"
	"log"

	"github.com/cpm-sim/cpm/internal/core"
	"github.com/cpm-sim/cpm/internal/gpm"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/uarch"
	"github.com/cpm-sim/cpm/internal/workload"
)

func main() {
	base := sim.DefaultConfig(workload.Mix3(1))
	base.Parallel = true

	// Calibrate and record one unmanaged run (calibration horizon + the
	// experiment horizon, so the replay never wraps).
	cal, err := core.Calibrate(base, 60, 240)
	if err != nil {
		log.Fatal(err)
	}
	recCfg := base
	recCfg.RecordTraces = true
	rec, err := sim.New(recCfg)
	if err != nil {
		log.Fatal(err)
	}
	const horizon = 26 * 20
	for k := 0; k < horizon; k++ {
		rec.Step()
	}
	set, err := rec.Traces()
	if err != nil {
		log.Fatal(err)
	}

	// Traces serialize; a fleet of comparisons can share one file.
	var buf bytes.Buffer
	if err := uarch.SaveTraces(&buf, set); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Recorded %d intervals x %d cores (%.1f KiB serialized)\n\n",
		horizon, len(set.Records), float64(buf.Len())/1024)
	loaded, err := uarch.LoadTraces(&buf)
	if err != nil {
		log.Fatal(err)
	}

	budget := cal.BudgetW(0.8)
	run := func(policy gpm.Policy) (power, bips float64) {
		cfg := base
		cfg.Replay = &loaded
		chip, err := sim.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		ctl, err := core.New(chip, core.Config{
			BudgetW: budget, Policy: policy, Transducers: cal.Transducers,
		})
		if err != nil {
			log.Fatal(err)
		}
		ctl.Run(6 * 20)
		const n = 20 * 20
		for k := 0; k < n; k++ {
			r := ctl.Step()
			power += r.Sim.ChipPowerW / n
			bips += r.Sim.TotalBIPS / n
		}
		return
	}

	fmt.Printf("Both policies replay the exact same 16-core Mix-3 workload at a %.1f W budget\n", budget)
	fmt.Printf("(islands alternate all-CPU-bound and all-memory-bound, so reallocation matters):\n\n")
	fmt.Println("policy             mean power   throughput")
	p1, b1 := run(&gpm.PerformanceAware{})
	fmt.Printf("performance-aware  %7.1f W   %6.2f BIPS\n", p1, b1)
	p2, b2 := run(gpm.EqualShare{})
	fmt.Printf("equal-share        %7.1f W   %6.2f BIPS\n", p2, b2)
	fmt.Printf("\nperformance-aware delivers %+.1f%% throughput on identical workload behaviour\n",
		(b1/b2-1)*100)
}
