// Quickstart: build the paper's default 8-core CMP (Table I, Mix-1),
// identify the plant and transducers offline (§II-D), wire the two-tier CPM
// controller (GPM + per-island PIDs) over it, and cap the chip at 80% of its
// unmanaged power demand while watching what that costs in throughput.
package main

import (
	"fmt"
	"log"

	"github.com/cpm-sim/cpm/internal/core"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/workload"
)

func main() {
	// 1. Describe the chip: Mix-1 pairs one CPU-bound with one memory-bound
	//    PARSEC application on each of 4 two-core voltage/frequency islands.
	cfg := sim.DefaultConfig(workload.Mix1())
	cfg.Parallel = true

	// 2. Offline system identification: unmanaged demand, utilization→power
	//    transducers, plant gain.
	cal, err := core.Calibrate(cfg, 60, 240)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Unmanaged chip demand: %.1f W at %.2f BIPS\n", cal.UnmanagedPowerW, cal.UnmanagedBIPS)
	fmt.Printf("Identified plant gain a = %.3f (paper: 0.79)\n\n", cal.PlantGain)

	// 3. Build the chip and the CPM controller with an 80% budget.
	budget := cal.BudgetW(0.80)
	cmp, err := sim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	cpm, err := core.New(cmp, core.Config{
		BudgetW:     budget,
		Transducers: cal.Transducers,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Run: 6 GPM epochs of convergence, then 20 measured epochs
	//    (1 epoch = 20 PIC invocations = 50 ms of chip time).
	cpm.Run(6 * 20)
	fmt.Printf("Managing to a %.1f W budget (80%% of demand):\n", budget)
	fmt.Println("epoch   chip W   vs budget   BIPS   island allocations (W)")
	var meanPower, meanBIPS float64
	const epochs = 20
	for e := 0; e < epochs; e++ {
		var pw, bips float64
		var alloc []float64
		for k := 0; k < 20; k++ {
			r := cpm.Step()
			pw += r.Sim.ChipPowerW
			bips += r.Sim.TotalBIPS
			// r.AllocW aliases controller scratch that the next Step
			// overwrites, so keep a copy rather than the slice itself.
			alloc = append(alloc[:0], r.AllocW...)
		}
		pw /= 20
		bips /= 20
		meanPower += pw
		meanBIPS += bips
		fmt.Printf("%5d   %6.1f   %+7.1f%%   %5.2f   %.1f / %.1f / %.1f / %.1f\n",
			e, pw, (pw-budget)/budget*100, bips, alloc[0], alloc[1], alloc[2], alloc[3])
	}
	meanPower /= epochs
	meanBIPS /= epochs

	fmt.Printf("\nMean power %.1f W (budget %.1f W, error %+.1f%%)\n",
		meanPower, budget, (meanPower-budget)/budget*100)
	fmt.Printf("Throughput %.2f BIPS vs %.2f unmanaged (%.1f%% degradation for a 20%% power cut)\n",
		meanBIPS, cal.UnmanagedBIPS, (1-meanBIPS/cal.UnmanagedBIPS)*100)
}
