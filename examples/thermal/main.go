// Thermal example: the Figure 18 scenario. Eight single-core islands run
// CPU-bound SPEC workloads on a 2x4 die; the performance-aware GPM, left to
// itself, concentrates the tight power budget on a few favoured islands —
// sometimes two adjacent ones, the recipe for a hotspot. Wrapping it in the
// thermal-aware policy vetoes sustained concentration on neighbours.
package main

import (
	"fmt"
	"log"

	"github.com/cpm-sim/cpm/internal/core"
	"github.com/cpm-sim/cpm/internal/gpm"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/thermal"
	"github.com/cpm-sim/cpm/internal/workload"
)

func main() {
	cfg := sim.DefaultConfig(workload.ThermalMix())
	cfg.Parallel = true
	cal, err := core.Calibrate(cfg, 60, 240)
	if err != nil {
		log.Fatal(err)
	}
	budget := cal.BudgetW(0.50) // tight budget: concentration is possible

	fp, err := thermal.Grid(2, 4) // the Figure 18(a) die: cores 1-4 over 5-8
	if err != nil {
		log.Fatal(err)
	}
	constraints := func() *gpm.ThermalAware {
		return &gpm.ThermalAware{
			Base:                 &gpm.PerformanceAware{},
			Floorplan:            fp,
			AdjacentPairCap:      0.30, // two neighbours: <=30% of budget...
			ConsecutiveLimit:     2,    // ...for at most 2 consecutive epochs
			SoloCap:              0.20, // one island: <=20% of budget...
			SoloConsecutiveLimit: 4,    // ...for at most 4 consecutive epochs
		}
	}

	run := func(name string, policy gpm.Policy) (allocs [][]float64, bips, peak float64) {
		cmp, err := sim.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		c, err := core.New(cmp, core.Config{BudgetW: budget, Policy: policy, Transducers: cal.Transducers})
		if err != nil {
			log.Fatal(err)
		}
		c.Run(6 * 20)
		for k := 0; k < 20*20; k++ {
			r := c.Step()
			if r.GPMInvoked {
				allocs = append(allocs, append([]float64(nil), r.AllocW...))
			}
			bips += r.Sim.TotalBIPS / (20 * 20)
			if r.Sim.MaxTempC > peak {
				peak = r.Sim.MaxTempC
			}
		}
		fmt.Printf("%-18s  %.2f BIPS, peak %.1f degC\n", name, bips, peak)
		return
	}

	fmt.Printf("Budget: %.1f W (50%% of the chip's %.1f W demand)\n\n", budget, cal.UnmanagedPowerW)
	perfAllocs, _, _ := run("performance-aware", &gpm.PerformanceAware{})
	thermAllocs, _, _ := run("thermal-aware", constraints())

	checker := constraints()
	fmt.Printf("\nHotspot-constraint violations over %d GPM epochs:\n", len(perfAllocs))
	fmt.Printf("  performance-aware: %d\n", checker.Violations(budget, perfAllocs))
	checker = constraints()
	fmt.Printf("  thermal-aware:     %d\n", checker.Violations(budget, thermAllocs))
}
