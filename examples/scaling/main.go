// Scaling example: the Figure 15 configuration. A 32-core CMP (Mix-3
// replicated twice: 8 four-core islands alternating CPU-bound and
// memory-bound) is managed at an 80% budget. The example also demonstrates
// the simulator's parallel executor: islands step concurrently with
// bit-identical results to the sequential engine, which is what makes the
// large configurations cheap to evaluate.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"github.com/cpm-sim/cpm/internal/core"
	"github.com/cpm-sim/cpm/internal/engine"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/workload"
)

func main() {
	mix := workload.Mix3(2) // 32 cores, 8 islands
	fmt.Printf("CMP: %d cores in %d islands (%s)\n\n", mix.Cores(), len(mix.Islands), mix.Name)

	// Demonstrate executor equivalence and speedup on the raw simulator.
	const steps = 300
	seqTime, seqPower := timeRun(mix, false, steps)
	parTime, parPower := timeRun(mix, true, steps)
	fmt.Printf("sequential executor: %8v   mean power %.2f W\n", seqTime.Round(time.Millisecond), seqPower)
	fmt.Printf("parallel executor:   %8v   mean power %.2f W (identical: %v)\n",
		parTime.Round(time.Millisecond), parPower, seqPower == parPower)
	fmt.Printf("speedup: %.1fx on GOMAXPROCS=%d (islands scale with available cores)\n\n",
		float64(seqTime)/float64(parTime), runtime.GOMAXPROCS(0))

	// Manage the 32-core chip at an 80% budget.
	cfg := sim.DefaultConfig(mix)
	cfg.Parallel = true
	cal, err := core.Calibrate(cfg, 60, 240)
	if err != nil {
		log.Fatal(err)
	}
	budget := cal.BudgetW(0.80)
	cmp, err := sim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	c, err := core.New(cmp, core.Config{BudgetW: budget, Transducers: cal.Transducers})
	if err != nil {
		log.Fatal(err)
	}
	s, err := engine.NewSession(engine.NewCPMRunner(c), engine.SessionConfig{
		WarmEpochs: 6, MeasureEpochs: 16, BudgetW: budget, Label: "scaling",
	})
	if err != nil {
		log.Fatal(err)
	}
	sum := s.Run()
	fmt.Printf("32-core chip at 80%% budget (%.1f W of %.1f W demand):\n", budget, cal.UnmanagedPowerW)
	fmt.Printf("  mean power %.1f W (%+.1f%% vs budget)\n", sum.MeanPowerW, (sum.MeanPowerW-budget)/budget*100)
	fmt.Printf("  throughput %.2f BIPS vs %.2f unmanaged (%.1f%% degradation)\n",
		sum.MeanBIPS, cal.UnmanagedBIPS, (1-sum.MeanBIPS/cal.UnmanagedBIPS)*100)
}

func timeRun(mix workload.Mix, parallel bool, steps int) (time.Duration, float64) {
	cfg := sim.DefaultConfig(mix)
	cfg.Parallel = parallel
	cmp, err := sim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	var power float64
	for k := 0; k < steps; k++ {
		power += cmp.Step().ChipPowerW / float64(steps)
	}
	return time.Since(start), power
}
