// Variation example: the §IV-B scenario. The die suffers intra-die process
// variation — islands 1, 2 and 3 leak 1.2x, 1.5x and 2x as much as island 4.
// The variation-aware GPM hill-climbs each island's energy-per-instruction
// curve, settling leaky silicon at lower provisions than tight silicon and
// improving the chip's power/throughput ratio at some throughput cost.
package main

import (
	"fmt"
	"log"

	"github.com/cpm-sim/cpm/internal/core"
	"github.com/cpm-sim/cpm/internal/gpm"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/variation"
	"github.com/cpm-sim/cpm/internal/workload"
)

func main() {
	cfg := sim.DefaultConfig(workload.Mix1())
	cfg.Parallel = true
	cfg.Variation = variation.PaperIslands(2) // 1.2x / 1.5x / 2.0x / 1.0x

	// Calibrate the chip *with* its variation — per-die characterization.
	cal, err := core.Calibrate(cfg, 60, 240)
	if err != nil {
		log.Fatal(err)
	}
	budget := cal.BudgetW(0.80)

	type outcome struct {
		allocW []float64
		bips   float64
		power  float64
	}
	run := func(policy gpm.Policy) outcome {
		cmp, err := sim.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		c, err := core.New(cmp, core.Config{BudgetW: budget, Policy: policy, Transducers: cal.Transducers})
		if err != nil {
			log.Fatal(err)
		}
		c.Run(6 * 20)
		var o outcome
		const n = 20 * 20
		for k := 0; k < n; k++ {
			r := c.Step()
			o.bips += r.Sim.TotalBIPS / n
			o.power += r.Sim.ChipPowerW / n
			// r.AllocW aliases controller scratch that the next Step
			// overwrites, so keep a copy rather than the slice itself.
			o.allocW = append(o.allocW[:0], r.AllocW...)
		}
		return o
	}

	perf := run(&gpm.PerformanceAware{})
	vara := run(&gpm.VariationAware{StepFrac: 0.08, HoldIntervals: 1, MinShareFrac: 0.7})

	leaks := []float64{1.2, 1.5, 2.0, 1.0}
	fmt.Printf("Budget %.1f W; island leakage multipliers %v\n\n", budget, leaks)
	fmt.Println("Final allocations (W):")
	fmt.Println("island  leakage  performance-aware  variation-aware")
	for i := range leaks {
		fmt.Printf("%6d  %6.1fx  %17.1f  %15.1f\n", i+1, leaks[i], perf.allocW[i], vara.allocW[i])
	}
	fmt.Printf("\n                     power      BIPS    W per BIPS\n")
	fmt.Printf("performance-aware  %6.1f W  %7.2f  %10.2f\n", perf.power, perf.bips, perf.power/perf.bips)
	fmt.Printf("variation-aware    %6.1f W  %7.2f  %10.2f\n", vara.power, vara.bips, vara.power/vara.bips)
	fmt.Printf("\npower/throughput improvement: %.1f%% for %.1f%% lower throughput\n",
		(1-(vara.power/vara.bips)/(perf.power/perf.bips))*100,
		(1-vara.bips/perf.bips)*100)
}
