package cpm_test

import (
	"bytes"
	"fmt"
	"log"

	cpm "github.com/cpm-sim/cpm"
)

// Example_manage shows the paper's methodology end to end: calibrate the
// chip offline (§II-D), then cap it at 80% of its unmanaged demand with the
// two-tier GPM+PIC controller.
func Example_manage() {
	cfg := cpm.DefaultConfig(cpm.Mix1()) // Table I chip, Mix-1 workload
	cfg.Parallel = true

	cal, err := cpm.Calibrate(cfg, 60, 240)
	if err != nil {
		log.Fatal(err)
	}
	chip, err := cpm.NewChip(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ctl, err := cpm.NewController(chip, cpm.ControllerConfig{
		BudgetW:     cal.BudgetW(0.80),
		Gains:       cpm.PaperGains, // (0.4, 0.4, 0.3)
		Transducers: cal.Transducers,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctl.Run(120) // 6 GPM epochs of convergence
	var mean float64
	for i := 0; i < 200; i++ {
		mean += ctl.Step().Sim.ChipPowerW / 200
	}
	fmt.Printf("tracking within %.0f%% of budget\n", 100*abs(mean-cal.BudgetW(0.8))/cal.BudgetW(0.8)+0.5)
}

// Example_policies swaps the GPM policy: the same controller machinery runs
// the thermal-aware or variation-aware policies of §IV, or any user-defined
// one implementing cpm.Policy.
func Example_policies() {
	cfg := cpm.DefaultConfig(cpm.Mix1())
	cfg.Variation = cpm.PaperVariation(2) // §IV-B: islands leak 1.2x/1.5x/2x/1x
	cal, err := cpm.Calibrate(cfg, 40, 160)
	if err != nil {
		log.Fatal(err)
	}
	chip, err := cpm.NewChip(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ctl, err := cpm.NewController(chip, cpm.ControllerConfig{
		BudgetW:     cal.BudgetW(0.80),
		Policy:      &cpm.VariationAware{StepFrac: 0.08, HoldIntervals: 1, MinShareFrac: 0.7},
		Transducers: cal.Transducers,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctl.Run(40)
	_ = ctl.Step()
}

// Example_traces records one run's workload behaviour and replays it — the
// recorded trace is frequency-independent, so different controllers can be
// compared on identical behaviour.
func Example_traces() {
	cfg := cpm.DefaultConfig(cpm.Mix1())
	cfg.RecordTraces = true
	chip, err := cpm.NewChip(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		chip.Step()
	}
	set, err := chip.Traces()
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cpm.SaveTraces(&buf, set); err != nil {
		log.Fatal(err)
	}
	loaded, err := cpm.LoadTraces(&buf)
	if err != nil {
		log.Fatal(err)
	}
	replayCfg := cpm.DefaultConfig(cpm.Mix1())
	replayCfg.Replay = &loaded
	replayChip, err := cpm.NewChip(replayCfg)
	if err != nil {
		log.Fatal(err)
	}
	_ = replayChip.Step()
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
