GO ?= go
FUZZTIME ?= 20s

.PHONY: build test race vet bench bench-sweep sweep fuzz cover golden telemetry test-metrics-race snapshot-check farm-check fleet-bench serve-check serve-smoke policy-check resilience-check resilience-smoke tech-check scorecard all

# Perf trajectory output of `make bench` (see EXPERIMENTS.md).
BENCH_OUT ?= BENCH_PR6.json

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Interval-kernel benchmark suite → $(BENCH_OUT): cache and stream
# microbenches plus the end-to-end interval kernel, with alloc counters.
# Pin reference numbers with BENCH_FLAGS='-baseline cache_access=24.5,...'.
bench:
	$(GO) run ./cmd/benchreport -out $(BENCH_OUT) $(BENCH_FLAGS)

# Serial-vs-pooled sweep benchmark (EXPERIMENTS.md records the measured
# speedup).
bench-sweep:
	$(GO) test ./cmd/cpmsweep/ -run '^$$' -bench BenchmarkPoolSweep -benchtime 3x

# Example sweep: Mix-1 budget curve on the pooled executor.
sweep: build
	$(GO) run ./cmd/cpmsweep -mix mix1 -budgets 0.5,0.6,0.7,0.8,0.9,0.95

# Fuzz smoke: run each native fuzz target briefly (seed corpora live in
# the packages' testdata/fuzz directories). Override with FUZZTIME=5m etc.
fuzz:
	$(GO) test ./internal/workload -fuzz FuzzParseMix -fuzztime $(FUZZTIME)
	$(GO) test ./internal/workload -fuzz FuzzStreamAddrs -fuzztime $(FUZZTIME)
	$(GO) test ./internal/control -fuzz FuzzRoots -fuzztime $(FUZZTIME)
	$(GO) test ./internal/snapshot -fuzz FuzzSnapshotDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/serve -fuzz FuzzServeRequestDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/gpm -fuzz FuzzNewPolicyInvariants -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sweepd -fuzz FuzzCheckpointRestore -fuzztime $(FUZZTIME)

# Checkpoint/restore gate: codec round-trips, every layer's snapshot tests,
# the six-scenario resume-equivalence proof (snapshot mid-run, restore into a
# fresh process-equivalent chip, finish bit-identically against the pinned
# goldens), plus a short decoder fuzz smoke.
snapshot-check:
	$(GO) test ./internal/snapshot ./internal/pic ./internal/gpm
	$(GO) test ./internal/check -run 'TestGoldenSnapshotResumeEquivalence|TestSessionSnapshotRejections|TestFNV64a' -v
	$(GO) test ./internal/snapshot -fuzz FuzzSnapshotDecode -fuzztime 10s

# Farm equivalence gate (race-enabled): the batched shared-sampler path must
# reproduce every pinned golden digest — single-chip farms, the six-scenario
# shared-sampler farm, group splits, distinct-seed replicas, whole-fleet
# snapshot/restore mid-run — plus the sweep-level farm-vs-scalar CSV
# byte-identity and the fleet metrics observer.
farm-check:
	$(GO) test -race ./internal/check -run 'TestFarm'
	$(GO) test -race ./internal/metrics -run 'TestFarmObserver'
	$(GO) test -race ./cmd/cpmsweep -run 'TestSweepFarm'

# Fleet throughput benchmark: chips/sec of the 64- and 1024-chip farms vs
# the aggregate-scalar reference (informational; `make bench` pins the
# numbers into $(BENCH_OUT)).
fleet-bench:
	$(GO) test -run '^$$' -bench 'BenchmarkFleetFarm' -benchtime 20x .

# Simulation-service gate (race-enabled): golden-over-HTTP equivalence for
# all six pinned scenarios, the coalescing proof (N identical concurrent
# requests -> exactly one simulation), backpressure/drain semantics, farm
# batch admission, and the cpmserve CLI tests.
serve-check:
	$(GO) test -race ./internal/serve ./cmd/cpmserve

# Self-driven smoke of the daemon: 100 requests through a real listener
# cycling scenarios, seeds and both response modes, with the /metrics
# scrape on stdout (ci.yml archives it as serve-smoke.prom).
serve-smoke: build
	$(GO) run ./cmd/cpmserve -smoke 100 -workers 2

# Coverage for the control-critical packages; ci.yml enforces the floor.
cover:
	$(GO) test -coverprofile=cover.out ./internal/check ./internal/engine ./internal/control
	$(GO) tool cover -func=cover.out | tail -1

# Adaptive/predictive control gate (race-enabled): the estimator and policy
# unit suites, the three new pinned golden scenarios, their snapshot-resume
# bit-identity, and the sweep-level farm-vs-scalar CSV byte-identity for the
# -adaptive / mpc / cache routes.
policy-check:
	$(GO) test -race ./internal/pic ./internal/gpm
	$(GO) test -race ./internal/check -run 'TestGoldenScenarios$$/(adaptive-pic|mpc-gpm|cache-aware)|TestGoldenSnapshotResumeEquivalence'
	$(GO) test -race ./internal/core -run 'TestAdaptive|TestCacheSignals|TestSnapshotRoundTripCacheAdaptive'
	$(GO) test -race ./cmd/cpmsweep -run 'TestSweepAdaptiveAndPredictiveRoutes|TestMakePolicyNames'

# Crash-safety gate (race-enabled): pool panic containment, the sweepd
# coordinator/checkpoint/kill-plan unit suite, the nine-scenario golden
# kill-equivalence proof (a worker kill at EVERY interval boundary, digests
# still bit-identical to the unkilled goldens), the farm mid-round snapshot
# guard, the resilient-vs-default sweep CSV byte-identity, and a short
# migration-path fuzz smoke (corrupt checkpoints must error, never resume
# divergently).
resilience-check:
	$(GO) test -race ./internal/sweepd
	$(GO) test -race ./internal/engine -run 'TestPool'
	$(GO) test -race ./internal/farm -run 'TestFarmSnapshot'
	$(GO) test -race ./internal/check -run 'TestResilient'
	$(GO) test -race ./cmd/cpmsweep -run 'TestResilient|TestParseSweepCLIResilient'
	$(GO) test ./internal/sweepd -fuzz FuzzCheckpointRestore -fuzztime 10s

# Technology/heterogeneity gate (race-enabled): the tech-scaling property
# suite and per-island model plumbing, the two new pinned golden scenarios
# (hetero-biglittle, tech-16nm) through the scalar, farm, snapshot-resume
# and serve-over-HTTP routes, plus the per-island planner/observer audit
# regressions and a short chip-snapshot v3 fuzz smoke.
tech-check:
	$(GO) test -race ./internal/power ./internal/uarch ./internal/maxbips
	$(GO) test -race ./internal/sim -run 'TestHeterogeneous|TestTech|TestIslandClasses|TestSnapshotRejectsIslandIdentityMismatch'
	$(GO) test -race ./internal/check -run 'TestGoldenScenarios$$/(hetero-biglittle|tech-16nm)|TestGoldenSnapshotResumeEquivalence/(hetero-biglittle|tech-16nm)|TestFarmSingleChipGolden/(hetero-biglittle|tech-16nm)|TestFarmSharedSamplerGolden'
	$(GO) test -race ./internal/serve -run 'TestGoldenOverHTTP'
	$(GO) test -race ./internal/engine -run 'TestStaticPredictionTablePerIsland|TestStaticPlannerHeterogeneous'
	$(GO) test -race ./internal/metrics -run 'TestResidencyCardinalityPerIsland'
	$(GO) test -race ./internal/experiments -run 'TestQuantumWSinglePointTable'
	$(GO) test ./internal/sim -fuzz FuzzChipSnapshotV3Restore -fuzztime 10s

# Informational resilience report: a small resilient sweep with kills
# injected every 3 intervals; stderr carries the checkpoint sizes, kill and
# migration counts (ci.yml archives it as resilience-report.txt).
resilience-smoke: build
	$(GO) run ./cmd/cpmsweep -resilient -kill-every 3 -ckpt-every 5 -mix mix1 -budgets 0.7,0.8,0.9 -warm 2 -epochs 4

# Adaptive/predictive policy scorecard (tracking error, settling time,
# BIPS/W vs the fixed-gain baseline on two mixes); CSV series land in
# scorecard-csv/ (ci.yml uploads them as an informational artifact).
scorecard: build
	$(GO) run ./cmd/cpmsim -csv scorecard-csv run scorecard

# Regenerate the golden traces after an intentional behaviour change.
golden:
	$(GO) test ./internal/check -run TestGoldenScenarios -update

# Race-enabled metrics suite: the registry/observer tests plus the pooled
# sweep with a concurrent scraper (cmd/cpmsweep TestSweepConcurrentScrape).
test-metrics-race:
	$(GO) test -race ./internal/metrics ./internal/diag ./cmd/cpmsweep

# Telemetry of the golden cpm-default scenario in both exporter formats
# (ci.yml uploads these as an informational artifact).
telemetry:
	$(GO) run ./cmd/cpmsim -metrics telemetry.prom scenario cpm-default
	$(GO) run ./cmd/cpmsim -metrics telemetry.json scenario cpm-default
