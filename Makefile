GO ?= go

.PHONY: build test race vet bench sweep all

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Serial-vs-pooled sweep benchmark (EXPERIMENTS.md records the measured
# speedup).
bench:
	$(GO) test ./cmd/cpmsweep/ -run '^$$' -bench BenchmarkPoolSweep -benchtime 3x

# Example sweep: Mix-1 budget curve on the pooled executor.
sweep: build
	$(GO) run ./cmd/cpmsweep -mix mix1 -budgets 0.5,0.6,0.7,0.8,0.9,0.95
